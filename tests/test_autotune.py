"""Tests for the hypercube shape auto-tuner."""

import pytest

from repro.analysis import autotune as autotune_module
from repro.analysis.autotune import (
    _factorizations,
    autotune_shape,
    candidate_shapes,
)
from repro.errors import PidCommError
from repro.hw.system import DimmSystem

MB = 1 << 20


class TestCandidateShapes:
    def test_1d(self):
        assert list(candidate_shapes(1024, 1)) == [(1024,)]

    def test_2d_factorizations(self):
        shapes = list(candidate_shapes(16, 2))
        assert (4, 4) in shapes and (1, 16) in shapes and (16, 1) in shapes
        for shape in shapes:
            assert shape[0] * shape[1] == 16
            assert shape[0] & (shape[0] - 1) == 0  # pow2 except last

    def test_non_pow2_total_allowed_in_last_dim(self):
        shapes = list(candidate_shapes(48, 2))
        assert (16, 3) in shapes
        # 3 never appears in a non-last position.
        assert all(s[0] & (s[0] - 1) == 0 for s in shapes)

    def test_invalid_ndim(self):
        with pytest.raises(PidCommError):
            list(candidate_shapes(16, 0))


class TestAutotune:
    @pytest.fixture(scope="class")
    def system(self):
        return DimmSystem.paper_testbed()

    def test_allgather_mix_prefers_long_x(self, system):
        """Figure 20: AllGather improves with a longer comm dimension."""
        scores = autotune_shape(
            system, 1024, 2, [("allgather", "10", 8 * MB)], min_dim=2)
        best = scores[0].shape
        worst = scores[-1].shape
        assert best[0] > worst[0]

    def test_alltoall_mix_is_shape_insensitive(self, system):
        scores = autotune_shape(
            system, 1024, 2, [("alltoall", "10", 8 * MB)], min_dim=4)
        spread = scores[-1].seconds / scores[0].seconds
        assert spread < 1.2

    def test_mixed_workload_returns_ranked_scores(self, system):
        mix = [("reduce_scatter", "10", 4 * MB),
               ("allreduce", "01", 4 * MB)]
        scores = autotune_shape(system, 1024, 2, mix, min_dim=4)
        seconds = [s.seconds for s in scores]
        assert seconds == sorted(seconds)
        assert all(s.shape[0] * s.shape[1] == 1024 for s in scores)

    def test_incompatible_mix_rejected(self, system):
        with pytest.raises(PidCommError, match="no candidate"):
            # Payload of 8 bytes cannot split into >=64-wide groups.
            autotune_shape(system, 1024, 2, [("alltoall", "10", 8)],
                           min_dim=64)

    def test_empty_mix_rejected(self, system):
        with pytest.raises(PidCommError, match="non-empty"):
            autotune_shape(system, 1024, 2, [])


class TestEnumerationMemoization:
    def test_candidate_shapes_memoized(self):
        _factorizations.cache_clear()
        first = list(candidate_shapes(512, 3))
        after_first = _factorizations.cache_info()
        second = list(candidate_shapes(512, 3))
        after_second = _factorizations.cache_info()
        assert first == second
        # The repeat enumeration re-derives nothing: one more cache hit
        # on the top-level entry, zero new misses.
        assert after_second.misses == after_first.misses
        assert after_second.hits == after_first.hits + 1

    def test_recursion_shares_suffix_subproblems(self):
        _factorizations.cache_clear()
        list(candidate_shapes(1024, 3))
        info = _factorizations.cache_info()
        # Prefix lengths 1..1024 all recurse into (1024/len, 2) suffix
        # problems; sharing those makes hits non-trivial even on the
        # very first enumeration.
        assert info.hits > 0

    def test_repeated_mix_entries_price_once(self, monkeypatch):
        system = DimmSystem.paper_testbed()
        calls = []
        real_plan = autotune_module._pid_plan

        def counting_plan(primitive, manager, dims, payload):
            calls.append((primitive, dims, payload))
            return real_plan(primitive, manager, dims, payload)

        monkeypatch.setattr(autotune_module, "_pid_plan", counting_plan)
        # 8 entries, but only 2 distinct (primitive, pattern, payload).
        mix = [("allreduce", "10", MB)] * 6 + [("allgather", "01", MB)] * 2
        scores = autotune_shape(system, 1024, 2, mix, min_dim=4)
        shapes_priced = len(scores)
        per_shape = {}
        for entry in calls:
            per_shape[entry] = per_shape.get(entry, 0) + 1
        # Each distinct entry was planned exactly once per surviving
        # shape (plus shapes rejected mid-pricing), never once per
        # repetition.
        assert len(per_shape) == 2
        assert all(count <= shapes_priced + 2 for count in per_shape.values())
        assert len(calls) < len(mix) * shapes_priced
