"""Content-aware transfer elision: bit-exact parity at every sparsity.

The elision layer (``core/collectives/program.py`` +
``hw/arena.scan_chunk_classes``) fingerprint-scans movement sources and
skips the gather and bus charge for all-zero / byte-identical output
rows.  The acceptance bar is the stack's standing one: an eliding
replay is *bit-identical* to the scalar interpreted oracle at every
elision rate -- all-zero, all-duplicate, mixed, and fully dense
payloads -- across both backends, untiled and streamed replay, and any
worker count.  The dense fast path must also hold: with elision off
(or inapplicable) no scan work happens at all, which the EngineStats
counters witness.

The tier-1 parity matrix shrinks :data:`ELIDE_MIN_SOURCE_BYTES` so the
small test machine exercises the full scan/classify/alias machinery;
one engine-level test keeps the real floor to check both of its sides.
"""

import numpy as np
import pytest

from .helpers import fill_group_inputs, groups_of, make_manager

from repro import Communicator, FULL, FaultInjector, SessionConfig
from repro.core.collectives import program as program_mod
from repro.core.collectives.schedule import Schedule
from repro.dtypes import INT32, SUM
from repro.engine.stats import EngineStats
from repro.errors import CollectiveError

PRIMITIVES = ("alltoall", "allgather", "reduce_scatter", "allreduce",
              "gather", "scatter", "reduce", "broadcast")
SHAPE = (4, 8)
BITMAP = "11"
CHUNK = 3
PAYLOADS = ("zero", "dup", "mixed", "dense")


@pytest.fixture
def tiny_floor(monkeypatch):
    """Let the 32-PE test machine's small payloads reach the scanner."""
    monkeypatch.setattr(program_mod, "ELIDE_MIN_SOURCE_BYTES", 0)


def _fill(system, groups, offset, elems, dtype, mode, seed):
    """Write one payload shape per PE; returns instance -> vectors.

    ``zero`` = everything elidable as zero rows; ``dup`` = each PE
    repeats one block across all its destination slots, so every
    destination row gathers the same bytes (duplicate rows); ``mixed``
    = random content
    with the same half of the per-destination blocks zeroed on every
    PE (the structured sparsity whole-row elision needs); ``dense`` =
    nonzero random bytes (nothing elidable).
    """
    rng = np.random.default_rng(seed)
    inputs = {}
    for group in groups:
        n = group.size
        vectors = []
        shared = rng.integers(1, 100, elems).astype(dtype.np_dtype)
        cold = rng.random(n) < 0.5
        for rank, pe in enumerate(group.pe_ids):
            if mode == "zero":
                values = np.zeros(elems, dtype=dtype.np_dtype)
            elif mode == "dup":
                if elems >= n and elems % n == 0:
                    block = rng.integers(1, 100, elems // n).astype(
                        dtype.np_dtype)
                    values = np.tile(block, n)
                else:
                    values = shared.copy()
            elif mode == "dense":
                values = rng.integers(1, 100, elems).astype(dtype.np_dtype)
            else:  # mixed: zero the cold destinations' blocks everywhere
                values = rng.integers(1, 100, elems).astype(dtype.np_dtype)
                if elems >= n:
                    blocks = values.reshape(n, -1)
                    blocks[cold] = 0
            system.write_elements(pe, offset, values, dtype)
            vectors.append(values)
        inputs[group.instance] = vectors
    return inputs


def _run(primitive, backend, execution, payload, *, elide=True,
         tile=None, workers=1, injector=None, seed=0, calls=2,
         chunk=CHUNK):
    """Run ``calls`` identical collectives; returns (outputs, result).

    The default 3-element chunk makes 12-byte movement chunks -- not
    a whole number of uint64 words, so the scanner takes its zero-only
    fallback (deliberately exercised by the parity matrix).  Duplicate
    detection needs word-viewable chunks; dup tests pass ``chunk=4``.
    """
    manager = make_manager(SHAPE)
    system = manager.system
    comm = Communicator(manager, SessionConfig(
        config=FULL, backend=backend, execution=execution,
        stream_tile_bytes=tile, parallel_workers=workers,
        fault_injector=injector, elide_transfers=elide))
    groups = groups_of(manager, BITMAP)
    n = groups[0].size
    item = INT32.itemsize

    if primitive in ("scatter", "broadcast"):
        rng = np.random.default_rng(seed)
        root_elems = n * chunk if primitive == "scatter" else chunk
        fill = {"zero": lambda: np.zeros(root_elems, INT32.np_dtype),
                "dup": lambda: np.full(root_elems, 7, INT32.np_dtype)}
        payloads = {g.instance: fill.get(payload, lambda: rng.integers(
            1, 100, root_elems).astype(INT32.np_dtype))() for g in groups}
        total = chunk * item
        dst = system.alloc(total)
        for _ in range(calls):
            result = getattr(comm, primitive)(
                BITMAP, total, dst_offset=dst, data_type=INT32,
                payloads=payloads)
        outputs = {g.instance: [system.read_elements(pe, dst, chunk, INT32)
                                for pe in g.pe_ids] for g in groups}
        return outputs, comm, result

    elems = chunk if primitive == "allgather" else n * chunk
    total = elems * item
    src = system.alloc(total)
    out_elems = {"alltoall": elems, "reduce_scatter": chunk,
                 "allgather": n * chunk, "allreduce": elems,
                 "gather": None, "reduce": None}[primitive]
    kwargs = ({"reduction_type": SUM}
              if primitive in ("reduce_scatter", "allreduce", "reduce")
              else {})
    if out_elems is None:
        for call in range(calls):
            _fill(system, groups, src, elems, INT32, payload, seed + call)
            result = getattr(comm, primitive)(
                BITMAP, total, src_offset=src, data_type=INT32, **kwargs)
        outputs = {inst: [np.asarray(out).view(INT32.np_dtype).reshape(-1)]
                   for inst, out in result.host_outputs.items()}
        return outputs, comm, result
    dst = system.alloc(out_elems * item)
    for call in range(calls):
        _fill(system, groups, src, elems, INT32, payload, seed + call)
        result = getattr(comm, primitive)(
            BITMAP, total, src_offset=src, dst_offset=dst, data_type=INT32,
            **kwargs)
    outputs = {g.instance: [system.read_elements(pe, dst, out_elems, INT32)
                            for pe in g.pe_ids] for g in groups}
    return outputs, comm, result


def _assert_same(a, b):
    assert a.keys() == b.keys()
    for inst in a:
        for x, y in zip(a[inst], b[inst]):
            np.testing.assert_array_equal(x, y)


class TestElisionParity:
    """Eliding replay == interpreted oracle, everywhere."""

    @pytest.mark.parametrize("payload", ("zero", "mixed"))
    @pytest.mark.parametrize("backend", ("scalar", "vectorized"))
    @pytest.mark.parametrize("primitive", PRIMITIVES)
    def test_all_primitives_match_oracle(self, primitive, backend, payload,
                                         tiny_floor):
        want, _, _ = _run(primitive, backend, "interpreted", payload,
                          elide=False)
        got, _, result = _run(primitive, backend, "compiled", payload)
        _assert_same(want, got)
        assert result.execution == "compiled"

    @pytest.mark.parametrize("payload", PAYLOADS)
    @pytest.mark.parametrize("workers", (1, 4), ids=lambda w: f"w{w}")
    @pytest.mark.parametrize("backend", ("scalar", "vectorized"))
    def test_streamed_parity(self, backend, workers, payload, tiny_floor):
        want, _, _ = _run("alltoall", backend, "interpreted", payload,
                          elide=False)
        got, _, result = _run("alltoall", backend, "compiled", payload,
                              tile=257, workers=workers)
        _assert_same(want, got)
        assert result.execution == "streamed"
        # Zero rows elide in any band; duplicate rows only alias
        # *within* a band (scratch locality), and 257-byte bands hold
        # a single row here -- so only "zero" must show elisions.
        if payload == "zero":
            assert result.chunks_elided > 0

    @pytest.mark.parametrize("backend", ("scalar", "vectorized"))
    def test_streamed_dup_aliases_within_band(self, backend, tiny_floor):
        # A tile larger than the payload keeps all rows in one band,
        # where band-local dedup can alias the duplicates.
        want, _, _ = _run("alltoall", backend, "interpreted", "dup",
                          elide=False, chunk=4)
        got, _, result = _run("alltoall", backend, "compiled", "dup",
                              tile=1 << 20, chunk=4)
        _assert_same(want, got)
        assert result.execution == "streamed"
        assert result.chunks_elided > 0

    @pytest.mark.parametrize("backend", ("scalar", "vectorized"))
    def test_zero_payload_elides_everything(self, backend, tiny_floor):
        _, _, result = _run("alltoall", backend, "compiled", "zero")
        assert result.chunks_scanned > 0
        assert result.chunks_elided == result.chunks_scanned
        assert result.elided_bytes > 0

    @pytest.mark.parametrize("backend", ("scalar", "vectorized"))
    def test_duplicate_rows_alias(self, backend, tiny_floor):
        # Per-PE repeated blocks make every destination row gather the
        # same bytes: one representative row is gathered, the rest
        # alias-copy it -- still bit-exact.
        want, _, _ = _run("alltoall", backend, "interpreted", "dup",
                          elide=False, chunk=4)
        got, _, result = _run("alltoall", backend, "compiled", "dup",
                              chunk=4)
        _assert_same(want, got)
        assert result.chunks_elided > 0
        assert result.chunks_elided < result.chunks_scanned

    def test_worker_counts_agree_exactly(self, tiny_floor):
        # Elision counters are precomputed serially, so they must be
        # identical at any worker count, not merely close.
        _, _, one = _run("alltoall", "vectorized", "compiled", "mixed",
                         tile=257, workers=1)
        _, _, four = _run("alltoall", "vectorized", "compiled", "mixed",
                          tile=257, workers=4)
        assert one.chunks_scanned == four.chunks_scanned
        assert one.chunks_elided == four.chunks_elided
        assert one.elided_bytes == four.elided_bytes
        assert one.ledger.breakdown() == four.ledger.breakdown()


class TestDenseFastPath:
    """No scan work unless elision is on and can engage."""

    def test_elide_off_leaves_counters_untouched(self):
        _, comm, result = _run("alltoall", "vectorized", "compiled",
                               "dense", elide=False)
        assert result.chunks_scanned == 0
        assert result.chunks_elided == 0
        assert comm.stats.elision_scans == 0
        assert comm.stats.chunks_scanned == 0
        assert "elide" not in result.ledger.breakdown()

    def test_dense_payload_scans_but_elides_nothing(self, tiny_floor):
        want, _, base = _run("alltoall", "vectorized", "compiled", "dense",
                             elide=False)
        got, comm, result = _run("alltoall", "vectorized", "compiled",
                                 "dense")
        _assert_same(want, got)
        assert result.chunks_scanned > 0
        assert result.chunks_elided == 0
        # The only ledger delta dense traffic pays is the scan itself.
        dense = dict(result.ledger.breakdown())
        assert dense.pop("elide", 0.0) > 0.0
        assert dense == base.ledger.breakdown()

    def test_small_payloads_stay_under_the_floor(self):
        # Real floor: the test machine's payloads are far below
        # ELIDE_MIN_SOURCE_BYTES, so even elide_transfers=True scans
        # nothing (scanning could never pay at this size).
        _, comm, result = _run("alltoall", "vectorized", "compiled", "zero")
        assert result.chunks_scanned == 0
        assert result.chunks_elided == 0
        assert comm.stats.elision_scans == 0

    def test_record_elision_ignores_scanless_calls(self):
        stats = EngineStats()
        stats.record_elision(chunks_scanned=0, chunks_elided=0,
                             elided_bytes=0)
        assert stats.elision_scans == 0
        assert stats.elision_rate == 0.0
        stats.record_elision(chunks_scanned=8, chunks_elided=6,
                             elided_bytes=48)
        assert stats.elision_scans == 1
        assert stats.elision_rate == 6 / 8


class TestConfigSurface:
    def test_interpreted_session_rejects_elision(self):
        with pytest.raises(CollectiveError, match="elide_transfers"):
            SessionConfig(execution="interpreted", elide_transfers=True)

    def test_interpreted_schedule_rejects_elision(self):
        with pytest.raises(CollectiveError, match="elide"):
            Schedule(execution="interpreted", elide=True)

    def test_with_execution_interpreted_clears_elide(self):
        s = Schedule().with_elide()
        assert s.elide
        assert "elide" in s.describe()
        assert not s.with_execution("interpreted").elide

    def test_elide_in_signature(self):
        assert Schedule().with_elide().signature \
            != Schedule().signature


class TestElisionUnderFaults:
    def test_injector_session_is_inert_but_exact(self, tiny_floor):
        # A fault injector forces the interpreted path, where elision
        # never runs -- the config must be inert, not wrong, and CRC
        # retry/rewind must still reach bit-exactness.
        want, _, _ = _run("alltoall", "scalar", "interpreted", "mixed",
                          elide=False, calls=4)
        injector = FaultInjector(seed=2, bit_flip_rate=0.004,
                                 timeout_rate=0.01)
        got, comm, result = _run("alltoall", "scalar", "auto", "mixed",
                                 injector=injector, calls=4)
        _assert_same(want, got)
        assert result.execution == "interpreted"
        assert result.chunks_scanned == 0
        assert comm.stats.elision_scans == 0
        assert comm.stats.retries > 0  # a fault really was rewound


class TestTunerIntegration:
    def test_space_offers_eliding_only_when_enabled(self):
        from repro.analysis.autotune import ScheduleSpace
        on = ScheduleSpace.from_session(SessionConfig(elide_transfers=True))
        off = ScheduleSpace.from_session(SessionConfig())
        assert on.eliding == (False, True)
        assert off.eliding == (False,)
        pinned = ScheduleSpace.from_session(SessionConfig(
            execution="interpreted"))
        assert pinned.eliding == (False,)

    @pytest.mark.parametrize("payload", ("zero", "dense"))
    def test_tuned_session_stays_exact(self, payload, tiny_floor):
        want, _, _ = _run("alltoall", "vectorized", "interpreted", payload,
                          elide=False)
        manager = make_manager(SHAPE)
        system = manager.system
        comm = Communicator(manager, SessionConfig(
            autotune="offline", elide_transfers=True))
        groups = groups_of(manager, BITMAP)
        n = groups[0].size
        elems = n * CHUNK
        total = elems * INT32.itemsize
        src = system.alloc(total)
        dst = system.alloc(total)
        for call in range(2):
            _fill(system, groups, src, elems, INT32, payload, call)
            result = comm.alltoall(BITMAP, total, src_offset=src,
                                   dst_offset=dst, data_type=INT32)
        got = {g.instance: [system.read_elements(pe, dst, elems, INT32)
                            for pe in g.pe_ids] for g in groups}
        _assert_same(want, got)
        assert result.schedule is not None


class TestServingPassthrough:
    def test_per_tenant_elision_attribution(self, tiny_floor):
        import asyncio
        from repro.serving import (CollectiveServer, LoadGenerator,
                                   TenantLoad)
        from repro.serving.loadgen import MIXES, make_moe_mix
        from repro.analysis.trace import render_elision, render_serving

        async def go():
            manager = make_manager(SHAPE, mram_bytes=1 << 17)
            server = CollectiveServer(manager, SessionConfig(
                backend="vectorized", execution="compiled",
                elide_transfers=True))
            gen = LoadGenerator(
                server, [TenantLoad("moe", "moe_route"),
                         TenantLoad("dense", "gnn_epoch")],
                dims=BITMAP, seed=11)
            fractions = gen.seed_payloads()
            assert fractions["moe"] > 0.5
            assert fractions["dense"] == 0.0
            report = await gen.run(rounds=2)
            return server, report

        server, report = asyncio.run(go())
        moe = report["tenants"]["moe"]
        dense = report["tenants"]["dense"]
        assert moe["chunks_elided"] > 0
        assert moe["elided_bytes"] > 0
        assert dense["chunks_elided"] == 0
        # The render paths must carry the same attribution.
        assert "elided" in render_serving(server.stats)
        assert "chunks elided" in render_elision(server.comm.stats)

    def test_render_elision_idle(self):
        assert "dense fast path" in \
            __import__("repro.analysis.trace",
                       fromlist=["render_elision"]).render_elision(
                           EngineStats())
