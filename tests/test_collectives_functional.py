"""Functional correctness of every primitive, config, and slicing.

Every test drives the full pipeline -- hypercube slicing, PE-assisted
reorder kernels, host lane passes, domain transfers -- on the simulated
32-PE system and compares the resulting MRAM contents bit-exactly
against the golden reference semantics.
"""

import numpy as np
import pytest

from repro import (
    ABLATION_LADDER,
    BASELINE,
    FULL,
    pidcomm_allgather,
    pidcomm_allreduce,
    pidcomm_alltoall,
    pidcomm_broadcast,
    pidcomm_gather,
    pidcomm_reduce,
    pidcomm_reduce_scatter,
    pidcomm_scatter,
)
from repro.core import reference as ref
from repro.dtypes import (
    BOR,
    INT8,
    INT16,
    INT32,
    INT64,
    MIN,
    SUM,
    UINT8,
    FLOAT32,
)
from repro.errors import CollectiveError

from .helpers import fill_group_inputs, groups_of, make_manager

CONFIG_IDS = [c.label for c in ABLATION_LADDER]


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def run_alltoall(shape, dims, dtype, config, rng, chunk_elems=3):
    manager = make_manager(shape)
    system = manager.system
    groups = groups_of(manager, dims)
    n = groups[0].size
    elems = n * chunk_elems
    total = elems * dtype.itemsize
    src = system.alloc(total)
    dst = system.alloc(total)
    inputs = fill_group_inputs(system, groups, src, elems, dtype, rng)
    pidcomm_alltoall(manager, dims, total, src, dst, dtype, config=config)
    for group in groups:
        expect = ref.alltoall(inputs[group.instance])
        for pe, want in zip(group.pe_ids, expect):
            got = system.read_elements(pe, dst, elems, dtype)
            np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("config", ABLATION_LADDER, ids=CONFIG_IDS)
@pytest.mark.parametrize("dims", ["100", "010", "001", "110", "101", "111"])
def test_alltoall_all_configs_and_dims(config, dims, rng):
    run_alltoall((4, 4, 2), dims, INT64, config, rng)


@pytest.mark.parametrize("dtype", [INT8, INT16, INT32, FLOAT32],
                         ids=lambda d: d.name)
def test_alltoall_dtypes(dtype, rng):
    run_alltoall((4, 4, 2), "110", dtype, FULL, rng, chunk_elems=4)


def test_alltoall_1d_whole_machine(rng):
    run_alltoall((32,), "1", INT64, FULL, rng, chunk_elems=1)


def test_alltoall_group_of_one_is_copy(rng):
    # y dimension of length 1: AlltoAll degenerates to a local copy.
    manager = make_manager((4, 1, 8))
    system = manager.system
    src, dst = system.alloc(16), system.alloc(16)
    values = rng.integers(0, 99, 2)
    system.write_elements(0, src, values, INT64)
    pidcomm_alltoall(manager, "010", 16, src, dst, INT64)
    np.testing.assert_array_equal(
        system.read_elements(0, dst, 2, INT64), values)


@pytest.mark.parametrize("config", ABLATION_LADDER, ids=CONFIG_IDS)
@pytest.mark.parametrize("dims", ["100", "010", "011", "111"])
def test_allgather(config, dims, rng):
    manager = make_manager((4, 4, 2))
    system = manager.system
    groups = groups_of(manager, dims)
    n = groups[0].size
    chunk_elems = 2
    in_bytes = chunk_elems * 8
    src = system.alloc(in_bytes)
    dst = system.alloc(n * in_bytes)
    inputs = fill_group_inputs(system, groups, src, chunk_elems, INT64, rng)
    pidcomm_allgather(manager, dims, in_bytes, src, dst, INT64, config=config)
    for group in groups:
        expect = ref.allgather(inputs[group.instance])
        for pe, want in zip(group.pe_ids, expect):
            got = system.read_elements(pe, dst, n * chunk_elems, INT64)
            np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("config", ABLATION_LADDER, ids=CONFIG_IDS)
@pytest.mark.parametrize("op", [SUM, MIN], ids=str)
def test_reduce_scatter(config, op, rng):
    manager = make_manager((4, 4, 2))
    system = manager.system
    dims = "110"
    groups = groups_of(manager, dims)
    n = groups[0].size
    chunk_elems = 2
    total = n * chunk_elems * 8
    src = system.alloc(total)
    dst = system.alloc(chunk_elems * 8)
    inputs = fill_group_inputs(system, groups, src, n * chunk_elems, INT64, rng)
    pidcomm_reduce_scatter(manager, dims, total, src, dst, INT64, op,
                           config=config)
    for group in groups:
        expect = ref.reduce_scatter(inputs[group.instance], op)
        for pe, want in zip(group.pe_ids, expect):
            got = system.read_elements(pe, dst, chunk_elems, INT64)
            np.testing.assert_array_equal(got, want)


def test_reduce_scatter_8bit_cross_domain(rng):
    # 1-byte elements let CM apply to arithmetic primitives (section V-C).
    manager = make_manager((4, 4, 2))
    system = manager.system
    groups = groups_of(manager, "100")
    n = groups[0].size
    total = n * 8
    src = system.alloc(total)
    dst = system.alloc(8)
    inputs = fill_group_inputs(system, groups, src, total, UINT8, rng)
    result = pidcomm_reduce_scatter(manager, "100", total, src, dst,
                                    UINT8, SUM, config=FULL)
    # CM applied: no domain-transfer cost at all.
    assert result.ledger.get("dt") == 0.0
    for group in groups:
        expect = ref.reduce_scatter(inputs[group.instance], SUM)
        for pe, want in zip(group.pe_ids, expect):
            got = system.read_elements(pe, dst, 8, UINT8)
            np.testing.assert_array_equal(got, want)


def test_reduce_scatter_64bit_always_pays_dt():
    manager = make_manager((4, 4, 2))
    system = manager.system
    total = 4 * 16
    src = system.alloc(total)
    dst = system.alloc(16)
    result = pidcomm_reduce_scatter(manager, "100", total, src, dst, INT64,
                                    SUM, config=FULL, functional=False)
    assert result.ledger.get("dt") > 0.0


@pytest.mark.parametrize("config", ABLATION_LADDER, ids=CONFIG_IDS)
@pytest.mark.parametrize("dims", ["100", "011", "111"])
def test_allreduce(config, dims, rng):
    manager = make_manager((4, 4, 2))
    system = manager.system
    groups = groups_of(manager, dims)
    n = groups[0].size
    elems = n * 2  # divisible into n chunks
    total = elems * 8
    src = system.alloc(total)
    dst = system.alloc(total)
    inputs = fill_group_inputs(system, groups, src, elems, INT64, rng)
    pidcomm_allreduce(manager, dims, total, src, dst, INT64, SUM,
                      config=config)
    for group in groups:
        expect = ref.allreduce(inputs[group.instance], SUM)
        for pe, want in zip(group.pe_ids, expect):
            got = system.read_elements(pe, dst, elems, INT64)
            np.testing.assert_array_equal(got, want)


def test_allreduce_bitwise_or(rng):
    # BFS-style visited-list update.
    manager = make_manager((4, 4, 2))
    system = manager.system
    groups = groups_of(manager, "111")
    elems = 32 * 1
    total = elems * 8
    src, dst = system.alloc(total), system.alloc(total)
    inputs = fill_group_inputs(system, groups, src, elems, INT64, rng)
    pidcomm_allreduce(manager, "111", total, src, dst, INT64, BOR)
    expect = ref.allreduce(inputs[0], BOR)
    for pe, want in zip(groups[0].pe_ids, expect):
        np.testing.assert_array_equal(
            system.read_elements(pe, dst, elems, INT64), want)


class TestRooted:
    def test_gather(self, rng):
        manager = make_manager((4, 4, 2))
        system = manager.system
        groups = groups_of(manager, "110")
        src = system.alloc(24)
        inputs = fill_group_inputs(system, groups, src, 3, INT64, rng)
        result = pidcomm_gather(manager, "110", 24, src, INT64)
        assert result.host_outputs is not None
        for group in groups:
            want = ref.gather(inputs[group.instance])
            np.testing.assert_array_equal(
                result.host_outputs[group.instance], want)

    def test_scatter(self, rng):
        manager = make_manager((4, 4, 2))
        system = manager.system
        groups = groups_of(manager, "101")
        n = groups[0].size
        dst = system.alloc(16)
        payloads = {g.instance: rng.integers(0, 99, n * 2).astype(np.int64)
                    for g in groups}
        pidcomm_scatter(manager, "101", 16, dst, INT64, payloads=payloads)
        for group in groups:
            expect = ref.scatter(payloads[group.instance], n)
            for pe, want in zip(group.pe_ids, expect):
                np.testing.assert_array_equal(
                    system.read_elements(pe, dst, 2, INT64), want)

    def test_scatter_functional_needs_payloads(self):
        manager = make_manager((4, 4, 2))
        manager.system.alloc(16)
        with pytest.raises(CollectiveError, match="payloads"):
            pidcomm_scatter(manager, "100", 16, 0, INT64)

    @pytest.mark.parametrize("config", [BASELINE, FULL],
                             ids=["Baseline", "+CM"])
    def test_reduce(self, config, rng):
        manager = make_manager((4, 4, 2))
        system = manager.system
        groups = groups_of(manager, "100")
        n = groups[0].size
        elems = n * 2
        total = elems * 8
        src = system.alloc(total)
        inputs = fill_group_inputs(system, groups, src, elems, INT64, rng)
        result = pidcomm_reduce(manager, "100", total, src, INT64, SUM,
                                config=config)
        assert result.host_outputs is not None
        for group in groups:
            want = ref.reduce(inputs[group.instance], SUM)
            got = np.asarray(result.host_outputs[group.instance]).view(
                np.int64).reshape(-1)
            np.testing.assert_array_equal(got, want)

    def test_broadcast(self, rng):
        manager = make_manager((4, 4, 2))
        system = manager.system
        groups = groups_of(manager, "111")
        dst = system.alloc(32)
        payload = rng.integers(0, 99, 4).astype(np.int64)
        pidcomm_broadcast(manager, "111", 32, dst, INT64,
                          payloads={0: payload})
        for pe in groups[0].pe_ids:
            np.testing.assert_array_equal(
                system.read_elements(pe, dst, 4, INT64), payload)

    def test_broadcast_per_instance_payloads(self, rng):
        manager = make_manager((4, 4, 2))
        system = manager.system
        groups = groups_of(manager, "100")
        dst = system.alloc(16)
        payloads = {g.instance: rng.integers(0, 99, 2).astype(np.int64)
                    for g in groups}
        pidcomm_broadcast(manager, "100", 16, dst, INT64, payloads=payloads)
        for group in groups:
            for pe in group.pe_ids:
                np.testing.assert_array_equal(
                    system.read_elements(pe, dst, 2, INT64),
                    payloads[group.instance])


class TestComposition:
    def test_rs_then_ag_equals_allreduce(self, rng):
        """The fused AllReduce must agree with composed RS + AG."""
        manager = make_manager((4, 4, 2))
        system = manager.system
        dims = "110"
        groups = groups_of(manager, dims)
        n = groups[0].size
        elems = n * 2
        total = elems * 8
        chunk_bytes = total // n
        src = system.alloc(total)
        mid = system.alloc(chunk_bytes)
        out_composed = system.alloc(total)
        out_fused = system.alloc(total)
        inputs = fill_group_inputs(system, groups, src, elems, INT64, rng)

        pidcomm_reduce_scatter(manager, dims, total, src, mid, INT64, SUM)
        pidcomm_allgather(manager, dims, chunk_bytes, mid, out_composed, INT64)

        # Restore the inputs RS consumed, then run the fused AllReduce.
        for group in groups:
            for pe, values in zip(group.pe_ids, inputs[group.instance]):
                system.write_elements(pe, src, values, INT64)
        pidcomm_allreduce(manager, dims, total, src, out_fused, INT64, SUM)

        for group in groups:
            for pe in group.pe_ids:
                np.testing.assert_array_equal(
                    system.read_elements(pe, out_composed, elems, INT64),
                    system.read_elements(pe, out_fused, elems, INT64))

    def test_scatter_then_gather_roundtrip(self, rng):
        manager = make_manager((4, 4, 2))
        system = manager.system
        groups = groups_of(manager, "111")
        buf = system.alloc(16)
        payload = rng.integers(0, 99, 32 * 2).astype(np.int64)
        pidcomm_scatter(manager, "111", 16, buf, INT64,
                        payloads={0: payload})
        result = pidcomm_gather(manager, "111", 16, buf, INT64)
        np.testing.assert_array_equal(result.host_outputs[0], payload)


class TestValidation:
    def test_indivisible_size_rejected(self):
        manager = make_manager((4, 4, 2))
        manager.system.alloc(64)
        with pytest.raises(CollectiveError, match="divide"):
            # 48 bytes cannot split into 32 chunks (the "111" group size).
            pidcomm_alltoall(manager, "111", 48, 0, 0, INT64,
                             functional=False)

    def test_misaligned_dtype_rejected(self):
        manager = make_manager((4, 4, 2))
        with pytest.raises(CollectiveError, match="whole number"):
            pidcomm_alltoall(manager, "100", 4, 0, 0, INT64,
                             functional=False)

    def test_bitwise_float_rejected(self):
        manager = make_manager((4, 4, 2))
        with pytest.raises(CollectiveError):
            pidcomm_allreduce(manager, "100", 32, 0, 0, FLOAT32, BOR,
                              functional=False)


class TestConfigEquivalence:
    """All optimization levels must leave byte-identical MRAM state --
    the techniques change costs, never results."""

    @pytest.mark.parametrize("dims", ["100", "011"])
    def test_alltoall_outputs_identical_across_ladder(self, dims, rng):
        snapshots = []
        for config in ABLATION_LADDER:
            manager = make_manager((4, 4, 2))
            system = manager.system
            groups = groups_of(manager, dims)
            n = groups[0].size
            total = n * 16
            src, dst = system.alloc(total), system.alloc(total)
            local_rng = np.random.default_rng(99)
            fill_group_inputs(system, groups, src, n * 2, INT64, local_rng)
            pidcomm_alltoall(manager, dims, total, src, dst, INT64,
                             config=config)
            snapshot = np.concatenate(
                [system.read_elements(pe, dst, n * 2, INT64)
                 for pe in manager.all_pes])
            snapshots.append(snapshot)
        for other in snapshots[1:]:
            np.testing.assert_array_equal(snapshots[0], other)

    def test_allreduce_outputs_identical_across_ladder(self, rng):
        snapshots = []
        for config in ABLATION_LADDER:
            manager = make_manager((4, 4, 2))
            system = manager.system
            groups = groups_of(manager, "110")
            n = groups[0].size
            total = n * 8
            src, dst = system.alloc(total), system.alloc(total)
            local_rng = np.random.default_rng(7)
            fill_group_inputs(system, groups, src, n, INT64, local_rng)
            pidcomm_allreduce(manager, "110", total, src, dst, INT64,
                              "sum", config=config)
            snapshots.append(np.concatenate(
                [system.read_elements(pe, dst, n, INT64)
                 for pe in manager.all_pes]))
        for other in snapshots[1:]:
            np.testing.assert_array_equal(snapshots[0], other)
