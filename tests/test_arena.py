"""Unit tests for the lane-major MRAM arena backing the vectorized backend.

Covers the properties the backend relies on: zero-copy views for
contiguous/strided PE runs, gather fallbacks for scattered lists, lazy
geometric growth with re-basing that preserves data, bounds checking
with the same error types the scalar path raises, and the
``ArenaPeMemory`` adapter staying valid across arena reallocations.
"""

import numpy as np
import pytest

from repro.errors import AllocationError, TransferError
from repro.hw.arena import MemoryArena
from repro.hw.memory import ArenaPeMemory


def _stamp(arena, pe_id, value):
    arena.row_view(pe_id)[:] = value


class TestViews:
    def test_contiguous_run_is_zero_copy(self):
        arena = MemoryArena(mram_bytes=64, max_rows=32)
        view = arena.lane_view([4, 5, 6, 7], offset=8, nbytes=16)
        assert view is not None
        assert view.shape == (4, 16)
        assert np.shares_memory(view, arena._data)
        view[:] = 9
        assert (arena.read_rows([4, 5, 6, 7], 8, 16) == 9).all()

    def test_strided_run_is_zero_copy(self):
        arena = MemoryArena(mram_bytes=64, max_rows=32)
        view = arena.lane_view([2, 6, 10, 14], offset=0, nbytes=4)
        assert view is not None
        assert view.shape == (4, 4)
        assert np.shares_memory(view, arena._data)

    def test_single_pe_is_zero_copy(self):
        arena = MemoryArena(mram_bytes=64, max_rows=32)
        view = arena.lane_view([5], offset=32, nbytes=32)
        assert view is not None
        assert view.shape == (1, 32)
        assert np.shares_memory(view, arena._data)

    def test_scattered_list_returns_none(self):
        arena = MemoryArena(mram_bytes=64, max_rows=32)
        assert arena.lane_view([1, 2, 4], 0, 8) is None     # uneven stride
        assert arena.lane_view([4, 3, 2], 0, 8) is None     # descending
        assert arena.lane_view([1, 1, 2], 0, 8) is None     # repeated

    def test_gather_fallback_matches_rows(self):
        arena = MemoryArena(mram_bytes=16, max_rows=32)
        for pe in (3, 7, 1):
            _stamp(arena, pe, pe * 10)
        got = arena.read_rows([7, 1, 3], 4, 8)
        np.testing.assert_array_equal(got[:, 0], [70, 10, 30])
        assert not np.shares_memory(got, arena._data)

    def test_scatter_fallback_writes_rows(self):
        arena = MemoryArena(mram_bytes=16, max_rows=32)
        mat = np.arange(3 * 4, dtype=np.uint8).reshape(3, 4)
        arena.write_rows([9, 2, 5], 4, mat)
        np.testing.assert_array_equal(arena.read_rows([9, 2, 5], 4, 4), mat)
        # Bytes outside the window stay zero.
        assert (arena.read_rows([9, 2, 5], 0, 4) == 0).all()


class TestGrowth:
    def test_lazy_until_touched(self):
        arena = MemoryArena(mram_bytes=1024, max_rows=4096)
        assert arena._data.shape[0] == 0
        assert arena.touched_count == 0

    def test_growth_preserves_data(self):
        arena = MemoryArena(mram_bytes=8, max_rows=1024)
        _stamp(arena, 100, 42)
        _stamp(arena, 900, 7)   # forces growth upward
        _stamp(arena, 3, 5)     # forces re-basing downward
        assert (arena.row_view(100) == 42).all()
        assert (arena.row_view(900) == 7).all()
        assert (arena.row_view(3) == 5).all()
        assert arena.touched_ids() == [3, 100, 900]

    def test_incremental_touch_grows_geometrically(self):
        arena = MemoryArena(mram_bytes=8, max_rows=1 << 16)
        allocations = 0
        last = None
        for pe in range(1000):
            arena.touch((pe,))
            if arena._data.shape[0] != last:
                allocations += 1
                last = arena._data.shape[0]
        assert allocations <= 16  # O(log n), not O(n)

    def test_touch_out_of_range_raises(self):
        arena = MemoryArena(mram_bytes=8, max_rows=16)
        with pytest.raises(AllocationError):
            arena.touch((16,))
        with pytest.raises(AllocationError):
            arena.touch((-1,))

    def test_fill_rows_broadcasts(self):
        arena = MemoryArena(mram_bytes=16, max_rows=32)
        buf = np.arange(4, dtype=np.uint8)
        arena.fill_rows([0, 1, 2, 3], 8, buf)       # view path
        arena.fill_rows([10, 5, 20], 8, buf)        # scatter path
        for pe in (0, 1, 2, 3, 10, 5, 20):
            np.testing.assert_array_equal(arena.read_rows([pe], 8, 4)[0], buf)


class TestBounds:
    def test_span_outside_bank_raises(self):
        arena = MemoryArena(mram_bytes=64, max_rows=8)
        with pytest.raises(TransferError):
            arena.read_rows([0], 60, 8)
        with pytest.raises(TransferError):
            arena.lane_view([0], -1, 4)

    def test_write_rows_validates_matrix(self):
        arena = MemoryArena(mram_bytes=64, max_rows=8)
        with pytest.raises(TransferError):
            arena.write_rows([0, 1], 0, np.zeros((2, 4), dtype=np.int32))
        with pytest.raises(TransferError):
            arena.write_rows([0, 1], 0, np.zeros((3, 4), dtype=np.uint8))

    def test_constructor_validates(self):
        with pytest.raises(AllocationError):
            MemoryArena(mram_bytes=0, max_rows=4)
        with pytest.raises(AllocationError):
            MemoryArena(mram_bytes=8, max_rows=0)


class TestArenaPeMemory:
    def test_mram_survives_arena_growth(self):
        arena = MemoryArena(mram_bytes=32, max_rows=1024)
        mem = ArenaPeMemory(arena, pe_id=2)
        mem.mram[:] = 11
        # Growing the arena reallocates the backing array; the property
        # must re-derive the row rather than hand back a stale alias.
        arena.touch((1000,))
        assert (mem.mram == 11).all()
        mem.mram[0] = 99
        assert arena.row_view(2)[0] == 99

    def test_wram_stays_private(self):
        arena = MemoryArena(mram_bytes=32, max_rows=8)
        a = ArenaPeMemory(arena, pe_id=0)
        b = ArenaPeMemory(arena, pe_id=1)
        a.wram[:8] = 1
        assert (b.wram[:8] == 0).all()
