"""Unit tests for the lane-major MRAM arena backing the vectorized backend.

Covers the properties the backend relies on: zero-copy views for
contiguous/strided PE runs, gather fallbacks for scattered lists, lazy
geometric growth with re-basing that preserves data, bounds checking
with the same error types the scalar path raises, and the
``ArenaPeMemory`` adapter staying valid across arena reallocations.
"""

import numpy as np
import pytest

from repro.errors import AllocationError, TransferError
from repro.hw.arena import MemoryArena, wide_dtype
from repro.hw.memory import ArenaPeMemory


def _stamp(arena, pe_id, value):
    arena.row_view(pe_id)[:] = value


class TestViews:
    def test_contiguous_run_is_zero_copy(self):
        arena = MemoryArena(mram_bytes=64, max_rows=32)
        view = arena.lane_view([4, 5, 6, 7], offset=8, nbytes=16)
        assert view is not None
        assert view.shape == (4, 16)
        assert np.shares_memory(view, arena._data)
        view[:] = 9
        assert (arena.read_rows([4, 5, 6, 7], 8, 16) == 9).all()

    def test_strided_run_is_zero_copy(self):
        arena = MemoryArena(mram_bytes=64, max_rows=32)
        view = arena.lane_view([2, 6, 10, 14], offset=0, nbytes=4)
        assert view is not None
        assert view.shape == (4, 4)
        assert np.shares_memory(view, arena._data)

    def test_single_pe_is_zero_copy(self):
        arena = MemoryArena(mram_bytes=64, max_rows=32)
        view = arena.lane_view([5], offset=32, nbytes=32)
        assert view is not None
        assert view.shape == (1, 32)
        assert np.shares_memory(view, arena._data)

    def test_scattered_list_returns_none(self):
        arena = MemoryArena(mram_bytes=64, max_rows=32)
        assert arena.lane_view([1, 2, 4], 0, 8) is None     # uneven stride
        assert arena.lane_view([4, 3, 2], 0, 8) is None     # descending
        assert arena.lane_view([1, 1, 2], 0, 8) is None     # repeated

    def test_gather_fallback_matches_rows(self):
        arena = MemoryArena(mram_bytes=16, max_rows=32)
        for pe in (3, 7, 1):
            _stamp(arena, pe, pe * 10)
        got = arena.read_rows([7, 1, 3], 4, 8)
        np.testing.assert_array_equal(got[:, 0], [70, 10, 30])
        assert not np.shares_memory(got, arena._data)

    def test_scatter_fallback_writes_rows(self):
        arena = MemoryArena(mram_bytes=16, max_rows=32)
        mat = np.arange(3 * 4, dtype=np.uint8).reshape(3, 4)
        arena.write_rows([9, 2, 5], 4, mat)
        np.testing.assert_array_equal(arena.read_rows([9, 2, 5], 4, 4), mat)
        # Bytes outside the window stay zero.
        assert (arena.read_rows([9, 2, 5], 0, 4) == 0).all()


class TestGrowth:
    def test_lazy_until_touched(self):
        arena = MemoryArena(mram_bytes=1024, max_rows=4096)
        assert arena._data.shape[0] == 0
        assert arena.touched_count == 0

    def test_growth_preserves_data(self):
        arena = MemoryArena(mram_bytes=8, max_rows=1024)
        _stamp(arena, 100, 42)
        _stamp(arena, 900, 7)   # forces growth upward
        _stamp(arena, 3, 5)     # forces re-basing downward
        assert (arena.row_view(100) == 42).all()
        assert (arena.row_view(900) == 7).all()
        assert (arena.row_view(3) == 5).all()
        assert arena.touched_ids() == [3, 100, 900]

    def test_incremental_touch_grows_geometrically(self):
        arena = MemoryArena(mram_bytes=8, max_rows=1 << 16)
        allocations = 0
        last = None
        for pe in range(1000):
            arena.touch((pe,))
            if arena._data.shape[0] != last:
                allocations += 1
                last = arena._data.shape[0]
        assert allocations <= 16  # O(log n), not O(n)

    def test_touch_out_of_range_raises(self):
        arena = MemoryArena(mram_bytes=8, max_rows=16)
        with pytest.raises(AllocationError):
            arena.touch((16,))
        with pytest.raises(AllocationError):
            arena.touch((-1,))

    def test_growth_exactly_at_capacity_boundary(self):
        # Touching the last covered row is a no-op; touching the first
        # row past it (hi == base + nrows) must grow, not wrap or skip.
        arena = MemoryArena(mram_bytes=8, max_rows=64)
        arena.touch(range(4))
        _stamp(arena, 3, 42)
        nrows = arena._data.shape[0]
        version = arena.version
        arena.touch((nrows - 1,))           # inside: no reallocation
        assert arena.version == version
        arena.touch((nrows,))               # one past: must reallocate
        assert arena.version == version + 1
        assert arena._data.shape[0] > nrows
        assert (arena.row_view(3) == 42).all()

    def test_non_contiguous_touch_order(self):
        # Jumping around (up, down, between) re-bases and grows in a
        # data-preserving way regardless of touch order.
        arena = MemoryArena(mram_bytes=8, max_rows=256)
        for pe, value in ((40, 4), (200, 20), (7, 7), (100, 10)):
            _stamp(arena, pe, value)
        for pe, value in ((40, 4), (200, 20), (7, 7), (100, 10)):
            assert (arena.row_view(pe) == value).all()
        assert arena.touched_ids() == [7, 40, 100, 200]
        # Rows covered by the backing array but never touched stay zero.
        assert (arena.read_rows([50], 0, 8) == 0).all()

    def test_views_invalidated_after_growth(self):
        # A growth reallocates the backing array: cached flat views are
        # dropped (fresh object, fresh bytes) and accessor views are
        # re-derived rather than aliasing the dead array.
        arena = MemoryArena(mram_bytes=8, max_rows=1024)
        _stamp(arena, 0, 5)
        stale = arena.lane_view([0], 0, 8)
        flat = arena.flat_wide(8)
        version = arena.version
        arena.touch((1000,))                # forces reallocation
        assert arena.version > version
        assert arena.flat_wide(8) is not flat
        assert not np.shares_memory(arena.lane_view([0], 0, 8), stale)
        assert (arena.row_view(0) == 5).all()

    def test_fill_rows_broadcasts(self):
        arena = MemoryArena(mram_bytes=16, max_rows=32)
        buf = np.arange(4, dtype=np.uint8)
        arena.fill_rows([0, 1, 2, 3], 8, buf)       # view path
        arena.fill_rows([10, 5, 20], 8, buf)        # scatter path
        for pe in (0, 1, 2, 3, 10, 5, 20):
            np.testing.assert_array_equal(arena.read_rows([pe], 8, 4)[0], buf)


class TestBounds:
    def test_span_outside_bank_raises(self):
        arena = MemoryArena(mram_bytes=64, max_rows=8)
        with pytest.raises(TransferError):
            arena.read_rows([0], 60, 8)
        with pytest.raises(TransferError):
            arena.lane_view([0], -1, 4)

    def test_write_rows_validates_matrix(self):
        arena = MemoryArena(mram_bytes=64, max_rows=8)
        with pytest.raises(TransferError):
            arena.write_rows([0, 1], 0, np.zeros((2, 4), dtype=np.int32))
        with pytest.raises(TransferError):
            arena.write_rows([0, 1], 0, np.zeros((3, 4), dtype=np.uint8))

    def test_constructor_validates(self):
        with pytest.raises(AllocationError):
            MemoryArena(mram_bytes=0, max_rows=4)
        with pytest.raises(AllocationError):
            MemoryArena(mram_bytes=8, max_rows=0)


class TestStreamTables:
    """Arena-global flat gather tables used by streamed replay."""

    def test_stream_width_prefers_whole_chunks(self):
        arena = MemoryArena(mram_bytes=64, max_rows=8)
        assert arena.stream_width(offset=0, chunk_bytes=8) == 8
        assert arena.stream_width(offset=16, chunk_bytes=16) == 16
        # Unaligned offset: fall back to the widest native element
        # dividing chunk, offset and mram_bytes alike.
        assert arena.stream_width(offset=4, chunk_bytes=8) == 4
        assert arena.stream_width(offset=0, chunk_bytes=6) == 2

    def test_take_band_matches_table_semantics(self):
        # out[r, s] = in[lane[r, s], slot[r, s]] over whole rows and
        # over a sub-band, gathered straight from the backing array.
        arena = MemoryArena(mram_bytes=16, max_rows=8)
        data = np.arange(32, dtype=np.uint8).reshape(2, 16)
        arena.write_rows([0, 1], 0, data)
        lane = np.array([[1, 1], [0, 0]])
        slot = np.array([[0, 1], [0, 1]])
        table, width = arena.stream_table([0, 1], 1, 0, 8, lane, slot)
        assert width == 8
        out = np.empty((2, table.shape[1]), dtype=wide_dtype(width))
        arena.take_band(table, width, 0, 2, out)
        np.testing.assert_array_equal(out.view(np.uint8), data[[1, 0]])
        band = np.empty((1, table.shape[1]), dtype=wide_dtype(width))
        arena.take_band(table, width, 1, 2, band)
        np.testing.assert_array_equal(band.view(np.uint8), data[[0]])

    def test_tables_are_read_only(self):
        arena = MemoryArena(mram_bytes=16, max_rows=8)
        lane = np.array([[0], [1]])
        slot = np.array([[0], [0]])
        table, _ = arena.stream_table([0, 1], 1, 0, 8, lane, slot)
        with pytest.raises(ValueError):
            table[0, 0] = 0

    def test_rebase_invalidates_cached_tables(self):
        # A table built before a downward re-base addresses the wrong
        # rows afterwards; the version token is how callers notice.
        arena = MemoryArena(mram_bytes=16, max_rows=64)
        lane = np.array([[0], [1]])
        slot = np.array([[0], [0]])
        before, _ = arena.stream_table([8, 9], 1, 0, 16, lane, slot)
        version = arena.version
        arena.touch((0,))                   # re-base: rows shift
        assert arena.version > version
        after, _ = arena.stream_table([8, 9], 1, 0, 16, lane, slot)
        assert not np.array_equal(before, after)


class TestArenaPeMemory:
    def test_mram_survives_arena_growth(self):
        arena = MemoryArena(mram_bytes=32, max_rows=1024)
        mem = ArenaPeMemory(arena, pe_id=2)
        mem.mram[:] = 11
        # Growing the arena reallocates the backing array; the property
        # must re-derive the row rather than hand back a stale alias.
        arena.touch((1000,))
        assert (mem.mram == 11).all()
        mem.mram[0] = 99
        assert arena.row_view(2)[0] == 99

    def test_wram_stays_private(self):
        arena = MemoryArena(mram_bytes=32, max_rows=8)
        a = ArenaPeMemory(arena, pe_id=0)
        b = ArenaPeMemory(arena, pe_id=1)
        a.wram[:8] = 1
        assert (b.wram[:8] == 0).all()
