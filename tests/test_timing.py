"""Unit tests for the cost model."""

import pytest

from repro.errors import PidCommError
from repro.hw.timing import (
    CATEGORIES,
    GB,
    CostLedger,
    MachineParams,
    throughput_gbps,
)


@pytest.fixture
def params():
    return MachineParams()


class TestPricing:
    def test_bus_scales_with_channels(self, params):
        one = params.bus_time(GB, channels=1)
        four = params.bus_time(GB, channels=4)
        assert one == pytest.approx(4 * four)

    def test_bus_utilization_inflates(self, params):
        full = params.bus_time(GB, channels=1, utilization=1.0)
        half = params.bus_time(GB, channels=1, utilization=0.5)
        assert half == pytest.approx(2 * full)

    def test_bus_rejects_bad_args(self, params):
        with pytest.raises(PidCommError):
            params.bus_time(-1, 1)
        with pytest.raises(PidCommError):
            params.bus_time(1, 0)
        with pytest.raises(PidCommError):
            params.bus_time(1, 1, utilization=0.0)

    def test_dt_parallel_over_cores(self, params):
        expected = GB / (params.dt_gbps_per_core * GB * params.host_cores)
        assert params.dt_time(GB) == pytest.approx(expected)

    def test_mod_classes_ordered_by_speed(self, params):
        nbytes = GB
        scalar = params.mod_time(nbytes, "scalar")
        local = params.mod_time(nbytes, "local")
        simd = params.mod_time(nbytes, "simd")
        shuffle = params.mod_time(nbytes, "shuffle")
        assert scalar > local > simd > shuffle

    def test_mod_unknown_class(self, params):
        with pytest.raises(PidCommError, match="unknown modulation"):
            params.mod_time(1, "warp")

    def test_reduce_simd_faster_than_scalar(self, params):
        assert params.reduce_time(GB, simd=True) < params.reduce_time(GB, simd=False)

    def test_pe_stream_is_pe_parallel(self, params):
        # Per-PE time does not depend on the number of PEs.
        assert params.pe_stream_time(1 << 20) == params.pe_stream_time(1 << 20)
        assert params.pe_stream_time(2 << 20) == pytest.approx(
            2 * params.pe_stream_time(1 << 20))

    def test_cpu_roofline(self, params):
        # Compute-bound case.
        assert params.cpu_time(params.cpu_flops, 0) == pytest.approx(1.0)
        # Memory-bound case.
        assert params.cpu_time(0, params.cpu_mem_gbps * GB) == pytest.approx(1.0)

    def test_mpi_includes_latency(self, params):
        base = params.mpi_time(0, messages=1)
        assert base == pytest.approx(params.mpi_latency_s)
        assert params.mpi_time(GB, messages=2) > params.mpi_time(GB, messages=1)

    def test_scaled_override(self, params):
        faster = params.scaled(bus_gbps_per_channel=28.0)
        assert faster.bus_time(GB, 1) == pytest.approx(params.bus_time(GB, 1) / 2)
        assert faster.host_cores == params.host_cores


class TestLedger:
    def test_add_and_total(self):
        ledger = CostLedger()
        ledger.add("bus", 1.0)
        ledger.add("bus", 0.5)
        ledger.add("dt", 2.0)
        assert ledger.get("bus") == pytest.approx(1.5)
        assert ledger.total == pytest.approx(3.5)

    def test_unknown_category_rejected(self):
        with pytest.raises(PidCommError, match="unknown cost category"):
            CostLedger().add("gpu", 1.0)

    def test_negative_rejected(self):
        with pytest.raises(PidCommError):
            CostLedger().add("bus", -1.0)

    def test_merge_and_operator(self):
        a = CostLedger({"bus": 1.0})
        b = CostLedger({"bus": 2.0, "dt": 3.0})
        c = a + b
        assert c.get("bus") == pytest.approx(3.0)
        assert c.get("dt") == pytest.approx(3.0)
        # operands untouched
        assert a.get("bus") == pytest.approx(1.0)

    def test_breakdown_ordered_and_nonzero(self):
        ledger = CostLedger()
        ledger.add("kernel", 1.0)
        ledger.add("bus", 2.0)
        keys = list(ledger.breakdown())
        assert keys == ["bus", "kernel"]  # canonical order
        assert list(ledger.breakdown().values()) == [2.0, 1.0]

    def test_fractions_sum_to_one(self):
        ledger = CostLedger({"bus": 1.0, "dt": 3.0})
        fracs = ledger.fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)
        assert fracs["dt"] == pytest.approx(0.75)

    def test_comm_total_excludes_compute(self):
        ledger = CostLedger({"bus": 1.0, "kernel": 5.0, "cpu": 7.0})
        assert ledger.comm_total == pytest.approx(1.0)

    def test_scaled(self):
        ledger = CostLedger({"bus": 1.0, "dt": 2.0})
        doubled = ledger.scaled(2.0)
        assert doubled.total == pytest.approx(6.0)

    def test_all_categories_known(self):
        ledger = CostLedger()
        for category in CATEGORIES:
            ledger.add(category, 0.1)
        assert ledger.total == pytest.approx(0.1 * len(CATEGORIES))


class TestThroughput:
    def test_throughput(self):
        assert throughput_gbps(GB, 1.0) == pytest.approx(1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(PidCommError):
            throughput_gbps(1.0, 0.0)
