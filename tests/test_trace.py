"""Tests for the plan-trace rendering."""

import pytest

from repro.analysis.trace import (
    dominant_category,
    render_categories,
    render_serving,
    render_timeline,
    trace_plan,
)
from repro.core.collectives import BASELINE, FULL, plan_allreduce, plan_alltoall
from repro.core.hypercube import HypercubeManager
from repro.dtypes import INT64, SUM
from repro.hw.system import DimmSystem


@pytest.fixture
def setup():
    system = DimmSystem.paper_testbed()
    manager = HypercubeManager(system, shape=(32, 32))
    return system, manager


class TestTracePlan:
    def test_step_costs_sum_to_plan_estimate(self, setup):
        system, manager = setup
        plan = plan_allreduce(manager, "10", 8 << 20, 0, 0, INT64, SUM, FULL)
        traces = trace_plan(plan, system)
        assert len(traces) == len(plan.steps)
        total = sum(t.seconds for t in traces)
        assert total == pytest.approx(plan.estimate(system).total)

    def test_exchange_dominates_allreduce(self, setup):
        system, manager = setup
        plan = plan_allreduce(manager, "10", 8 << 20, 0, 0, INT64, SUM, FULL)
        heaviest = max(trace_plan(plan, system), key=lambda t: t.seconds)
        assert "ReduceExchange" in heaviest.label


class TestRendering:
    def test_timeline_lists_every_step(self, setup):
        system, manager = setup
        plan = plan_alltoall(manager, "10", 1 << 20, 0, 0, INT64, FULL)
        text = render_timeline(plan, system)
        assert "RotateExchange" in text
        assert text.count("\n") == len(plan.steps)
        assert "ms" in text

    def test_categories_show_shares(self, setup):
        system, manager = setup
        plan = plan_alltoall(manager, "10", 1 << 20, 0, 0, INT64, FULL)
        text = render_categories(plan, system)
        assert "bus" in text and "%" in text and "#" in text

    def test_dominant_category_shifts_with_config(self, setup):
        system, manager = setup
        size = 8 << 20
        fast = plan_alltoall(manager, "10", size, 0, 0, INT64, FULL)
        slow = plan_alltoall(manager, "10", size, 0, 0, INT64, BASELINE)
        # Optimized AlltoAll is bus-bound; the baseline is host-bound.
        assert dominant_category(fast, system) == "bus"
        assert dominant_category(slow, system) in ("host_mem", "host_mod")

    def test_render_serving_lists_tenants(self):
        import asyncio

        from repro import CollectiveServer, CommRequest, SessionConfig
        from tests.helpers import make_manager

        async def scenario():
            server = CollectiveServer(make_manager((8, 4)),
                                      SessionConfig(functional=False))
            assert render_serving(server.stats) \
                == "Serving(no requests dispatched)"
            session = server.session("tenant-a")
            session.submit(CommRequest("alltoall", "10", 256,
                                       dst_offset=8192))
            await server.drain()
            return render_serving(server.stats)

        text = asyncio.run(scenario())
        assert "tenant-a" in text
        assert "p50" in text and "p99" in text and "goodput" in text
