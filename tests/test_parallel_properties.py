"""Property tests for the parallel engine's safety invariants.

Two invariants make thread parallelism correct by construction, and
both are checked here over randomized inputs (Hypothesis):

* ``band_ranges`` partitions the output rows: every row is covered by
  exactly one band, in order, so concurrent band gathers write
  provably disjoint byte ranges of the output buffer.
* ``schedule_waves`` never co-schedules two requests whose MRAM
  footprints overlap: every same-wave pair has disjoint write
  intervals (checked both through ``assert_wave_safety`` and by a
  direct interval-overlap oracle here).

Skipped cleanly when Hypothesis is unavailable.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st
from itertools import combinations

from repro import FULL
from repro.core.collectives.program import band_ranges
from repro.dtypes import INT64, SUM
from repro.engine import assert_wave_safety, schedule_waves
from repro.engine.request import NormalizedRequest

PRIMITIVES = ("alltoall", "allgather", "reduce_scatter", "allreduce",
              "gather", "scatter", "reduce", "broadcast")


# ----------------------------------------------------------------------
# Band partitioning
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(rows=st.integers(min_value=0, max_value=400),
       row_bytes=st.integers(min_value=1, max_value=1 << 12),
       tile_bytes=st.integers(min_value=1, max_value=1 << 16))
def test_band_ranges_partition_rows_exactly_once(rows, row_bytes,
                                                 tile_bytes):
    bands = band_ranges(rows, row_bytes, tile_bytes)
    if rows == 0:
        assert bands == []
        return
    # Contiguous, ascending, non-empty: together they tile [0, rows)
    # with no gap and no overlap -- each output row is written by
    # exactly one band.
    assert bands[0][0] == 0
    assert bands[-1][1] == rows
    for (a0, a1), (b0, b1) in zip(bands, bands[1:]):
        assert a0 < a1
        assert a1 == b0
    assert bands[-1][0] < bands[-1][1]


@settings(max_examples=100, deadline=None)
@given(rows=st.integers(min_value=1, max_value=400),
       row_bytes=st.integers(min_value=1, max_value=1 << 12),
       tile_bytes=st.integers(min_value=1, max_value=1 << 16))
def test_band_heights_respect_tile_budget(rows, row_bytes, tile_bytes):
    bands = band_ranges(rows, row_bytes, tile_bytes)
    height = max(1, tile_bytes // row_bytes)
    for i, (r0, r1) in enumerate(bands):
        if i < len(bands) - 1:
            assert r1 - r0 == min(rows, height)
        else:
            assert 0 < r1 - r0 <= min(rows, height)
    # A band exceeds the byte budget only in the clamped single-row
    # case (one row is the smallest possible unit of work).
    for r0, r1 in bands:
        assert (r1 - r0) * row_bytes <= max(tile_bytes, row_bytes)


# ----------------------------------------------------------------------
# Hazard-wave scheduling
# ----------------------------------------------------------------------
def _request(primitive, src, dst, size):
    return NormalizedRequest(
        primitive=primitive, dims=(0,), total_data_size=size,
        src_offset=src, dst_offset=dst, dtype=INT64, op=SUM,
        config=FULL, group_size=4)


request_strategy = st.builds(
    _request,
    st.sampled_from(PRIMITIVES),
    st.integers(min_value=0, max_value=64).map(lambda k: 8 * k),
    st.integers(min_value=0, max_value=64).map(lambda k: 8 * k),
    st.integers(min_value=1, max_value=32).map(lambda k: 8 * k))


def _spans_disjoint(a, b):
    (o1, n1), (o2, n2) = a, b
    return o1 + n1 <= o2 or o2 + n2 <= o1


@settings(max_examples=200, deadline=None)
@given(requests=st.lists(request_strategy, min_size=1, max_size=10))
def test_scheduled_waves_are_hazard_free(requests):
    waves = schedule_waves(requests)
    # Every request lands in exactly one wave...
    scheduled = sorted(i for wave in waves for i in wave)
    assert scheduled == list(range(len(requests)))
    # ...and the engine-side checker agrees the schedule is safe.
    assert_wave_safety(requests, waves)
    # Direct oracle: same-wave pairs have pairwise-disjoint write
    # intervals (so their concurrent writes can never collide) and
    # neither reads what the other writes.
    footprints = [req.footprint() for req in requests]
    for wave in waves:
        for i, j in combinations(wave, 2):
            for wa in footprints[i].writes:
                for span in footprints[j].writes + footprints[j].reads:
                    assert _spans_disjoint(wa, span)
            for wb in footprints[j].writes:
                for span in footprints[i].reads:
                    assert _spans_disjoint(wb, span)


@settings(max_examples=100, deadline=None)
@given(requests=st.lists(request_strategy, min_size=2, max_size=8),
       data=st.data())
def test_wave_safety_checker_catches_conflicts(requests, data):
    # Force a known conflict into one wave and the checker must raise.
    from repro.errors import CollectiveError
    i = data.draw(st.integers(min_value=0, max_value=len(requests) - 2))
    requests = list(requests)
    # Two alltoalls onto the same dst interval: a guaranteed WAW
    # conflict (identical read-only footprints would be safe to share).
    clash = _request("alltoall", requests[i].src_offset,
                     requests[i].dst_offset, requests[i].total_data_size)
    requests[i] = clash
    requests[i + 1] = clash
    waves = [[i, i + 1]]
    with pytest.raises(CollectiveError, match="conflicting requests"):
        assert_wave_safety(requests, waves)


@settings(max_examples=100, deadline=None)
@given(requests=st.lists(request_strategy, min_size=1, max_size=10))
def test_waves_preserve_submission_order(requests):
    waves = schedule_waves(requests)
    for wave in waves:
        assert wave == sorted(wave)
    # A request's wave never precedes that of an earlier conflicting
    # request (program order is preserved per hazard chain).
    footprints = [req.footprint() for req in requests]
    wave_of = {i: w for w, wave in enumerate(waves) for i in wave}
    for j in range(len(requests)):
        for i in range(j):
            if footprints[i].conflicts_with(footprints[j]):
                assert wave_of[i] < wave_of[j]
