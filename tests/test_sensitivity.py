"""Tests for the calibration sensitivity (tornado) analysis."""

import pytest

from repro.analysis.sensitivity import (
    TUNABLE_FIELDS,
    parameter_sensitivity,
)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        # A small payload keeps the sweep fast; ratios are size-stable.
        return parameter_sensitivity(payload=1 << 20)

    def test_one_row_per_parameter(self, rows):
        assert {r["parameter"] for r in rows} == set(TUNABLE_FIELDS)

    def test_sorted_by_swing(self, rows):
        swings = [r["swing"] for r in rows]
        assert swings == sorted(swings, reverse=True)

    def test_bus_is_the_dominant_lever(self, rows):
        """The headline is bus-bound on the PID side, so the bus rate
        must top the tornado."""
        assert rows[0]["parameter"] == "bus_gbps_per_channel"

    def test_unused_paths_have_zero_swing(self, rows):
        """Parameters exercised by neither flow (e.g. the SIMD word
        shifts that cross-domain modulation fuses away) cannot move the
        headline at all."""
        by = {r["parameter"]: r["swing"] for r in rows}
        assert by["mod_simd_gbps_per_core"] == 0.0
        assert by["reduce_simd_gbps_per_core"] == 0.0

    def test_faster_bus_helps_pidcomm_more(self, rows):
        by = {r["parameter"]: r for r in rows}
        bus = by["bus_gbps_per_channel"]
        # PID-Comm is bus-bound, the baseline host-bound: a faster bus
        # widens the gap and a slower one narrows it.
        assert bus["scaled_up_x"] > bus["baseline_x"] > bus["scaled_down_x"]

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            parameter_sensitivity(field_names=["warp_speed"])
