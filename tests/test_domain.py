"""Unit tests for PIM-domain striping and domain transfer."""

import numpy as np
import pytest

from repro.errors import TransferError
from repro.hw import domain


class TestDomainTransfer:
    def test_word_bytes_stripe_across_lanes(self):
        # Two 4-byte words over 4 lanes: lane l must hold byte l of each.
        host = np.arange(8, dtype=np.uint8)
        mat = domain.host_to_pim(host, lanes=4)
        assert mat.shape == (4, 2)
        # word 0 = bytes 0..3, word 1 = bytes 4..7
        assert mat[:, 0].tolist() == [0, 1, 2, 3]
        assert mat[:, 1].tolist() == [4, 5, 6, 7]

    def test_roundtrip_is_identity(self):
        rng = np.random.default_rng(1)
        host = rng.integers(0, 256, 64 * 9, dtype=np.uint8)
        assert np.array_equal(
            domain.pim_to_host(domain.host_to_pim(host, 8)), host)

    def test_roundtrip_other_direction(self):
        rng = np.random.default_rng(2)
        mat = rng.integers(0, 256, (8, 24), dtype=np.uint8)
        assert np.array_equal(
            domain.host_to_pim(domain.pim_to_host(mat), 8), mat)

    def test_size_must_be_lane_multiple(self):
        with pytest.raises(TransferError, match="not a multiple"):
            domain.host_to_pim(np.zeros(10, dtype=np.uint8), 8)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TransferError):
            domain.host_to_pim(np.zeros(8, dtype=np.int32), 8)
        with pytest.raises(TransferError):
            domain.pim_to_host(np.zeros((2, 2), dtype=np.float64))


class TestLaneViews:
    def test_words_from_lanes_sees_pe_elements(self):
        # Each lane holds its own elements contiguously.
        mat = np.arange(16, dtype=np.uint8).reshape(2, 8)
        words = domain.words_from_lanes(mat, np.dtype("<u4"))
        assert words.shape == (2, 2)
        assert np.array_equal(
            words[0], mat[0].view(np.uint32))

    def test_words_roundtrip(self):
        rng = np.random.default_rng(3)
        mat = rng.integers(0, 256, (4, 16), dtype=np.uint8)
        words = domain.words_from_lanes(mat, np.dtype(np.int64))
        assert np.array_equal(domain.lanes_from_words(words), mat)

    def test_misaligned_lane_rejected(self):
        with pytest.raises(TransferError, match="not a multiple"):
            domain.words_from_lanes(np.zeros((2, 6), dtype=np.uint8),
                                    np.dtype(np.int64))


class TestLanePermutations:
    def test_rotate_moves_lane_down(self):
        mat = np.arange(12, dtype=np.uint8).reshape(4, 3)
        rolled = domain.rotate_lanes(mat, 1)
        # lane l content moves to lane l+1
        assert np.array_equal(rolled[1], mat[0])
        assert np.array_equal(rolled[0], mat[3])

    def test_rotate_full_cycle_is_identity(self):
        mat = np.arange(12, dtype=np.uint8).reshape(4, 3)
        assert np.array_equal(domain.rotate_lanes(mat, 4), mat)

    def test_permute_lanes(self):
        mat = np.arange(8, dtype=np.uint8).reshape(4, 2)
        perm = np.array([2, 0, 3, 1])
        out = domain.permute_lanes(mat, perm)
        for l in range(4):
            assert np.array_equal(out[l], mat[perm[l]])

    def test_permute_rejects_non_permutation(self):
        mat = np.zeros((4, 2), dtype=np.uint8)
        with pytest.raises(TransferError, match="not a permutation"):
            domain.permute_lanes(mat, np.array([0, 0, 1, 2]))
        with pytest.raises(TransferError, match="does not match"):
            domain.permute_lanes(mat, np.array([0, 1, 2]))
