"""Unit tests for the DIMM geometry and entangled-group addressing."""

import pytest

from repro.errors import GeometryError
from repro.hw.geometry import DimmGeometry, PeCoord


@pytest.fixture
def paper_geom():
    return DimmGeometry(4, 4, 8, 8)


class TestSizes:
    def test_paper_testbed_has_1024_pes(self, paper_geom):
        assert paper_geom.num_pes == 1024

    def test_entangled_group_count(self, paper_geom):
        assert paper_geom.num_entangled_groups == 128
        assert paper_geom.num_entangled_groups * paper_geom.chips_per_rank \
            == paper_geom.num_pes

    def test_per_level_sizes(self, paper_geom):
        assert paper_geom.pes_per_rank == 64
        assert paper_geom.pes_per_channel == 256
        assert paper_geom.egs_per_rank == 8
        assert paper_geom.egs_per_channel == 32

    def test_invalid_geometry_rejected(self):
        with pytest.raises(GeometryError):
            DimmGeometry(channels=0)
        with pytest.raises(GeometryError):
            DimmGeometry(chips_per_rank=6)  # not a power of two


class TestAddressing:
    def test_pe_id_roundtrip(self, paper_geom):
        for pe in range(0, paper_geom.num_pes, 37):
            assert paper_geom.pe_id(paper_geom.pe_coord(pe)) == pe

    def test_chip_varies_fastest(self, paper_geom):
        c0 = paper_geom.pe_coord(0)
        c1 = paper_geom.pe_coord(1)
        assert (c0.channel, c0.rank, c0.bank) == (c1.channel, c1.rank, c1.bank)
        assert c1.chip == c0.chip + 1

    def test_bank_varies_after_chips(self, paper_geom):
        coord = paper_geom.pe_coord(paper_geom.chips_per_rank)
        assert coord.chip == 0 and coord.bank == 1

    def test_channel_is_slowest(self, paper_geom):
        coord = paper_geom.pe_coord(paper_geom.pes_per_channel)
        assert coord == PeCoord(channel=1, rank=0, bank=0, chip=0)

    def test_out_of_range_rejected(self, paper_geom):
        with pytest.raises(GeometryError):
            paper_geom.pe_coord(paper_geom.num_pes)
        with pytest.raises(GeometryError):
            paper_geom.pe_id(PeCoord(channel=4, rank=0, bank=0, chip=0))


class TestEntangledGroups:
    def test_members_are_consecutive_pes(self, paper_geom):
        eg = paper_geom.entangled_group(5)
        assert eg.pe_ids == tuple(range(40, 48))
        assert eg.lanes == 8

    def test_members_share_rank_and_bank(self, paper_geom):
        eg = paper_geom.entangled_group(17)
        coords = [paper_geom.pe_coord(pe) for pe in eg.pe_ids]
        assert len({(c.channel, c.rank, c.bank) for c in coords}) == 1
        assert [c.chip for c in coords] == list(range(8))

    def test_eg_and_lane_of_pe(self, paper_geom):
        for pe in (0, 7, 8, 63, 1023):
            eg = paper_geom.eg_of_pe(pe)
            lane = paper_geom.lane_of_pe(pe)
            assert paper_geom.entangled_group(eg).pe_ids[lane] == pe

    def test_all_entangled_groups_partition_pes(self, paper_geom):
        seen = set()
        for eg in paper_geom.all_entangled_groups:
            seen.update(eg.pe_ids)
        assert seen == set(range(paper_geom.num_pes))


class TestBusTerms:
    def test_full_eg_utilization_is_one(self, paper_geom):
        assert paper_geom.lane_utilization(range(8)) == 1.0
        assert paper_geom.lane_utilization(range(64)) == 1.0

    def test_partial_eg_wastes_lanes(self, paper_geom):
        # 2 PEs of one 8-lane entangled group -> 1/4 useful.
        assert paper_geom.lane_utilization([0, 1]) == pytest.approx(0.25)

    def test_spread_across_egs_is_worst(self, paper_geom):
        # One PE in each of 4 EGs: every burst 1/8 useful.
        assert paper_geom.lane_utilization([0, 8, 16, 24]) == pytest.approx(1 / 8)

    def test_empty_set_rejected(self, paper_geom):
        with pytest.raises(GeometryError):
            paper_geom.lane_utilization([])

    def test_channels_and_ranks_used(self, paper_geom):
        assert paper_geom.channels_used([0, 1, 2]) == 1
        assert paper_geom.channels_used([0, 256, 512, 768]) == 4
        assert paper_geom.ranks_used([0, 64, 128]) == 3
        assert paper_geom.ranks_used(range(64)) == 1
