"""Unit tests for cube slicing into communication groups."""

import pytest

from repro.core.groups import CommGroup, group_size, resolve_dims, slice_groups
from repro.core.hypercube import HypercubeManager
from repro.errors import HypercubeError
from repro.hw.system import DimmSystem


@pytest.fixture
def manager():
    return HypercubeManager(DimmSystem.small(), shape=(4, 4, 2))


class TestResolveDims:
    def test_bitmap_and_indices_agree(self, manager):
        assert resolve_dims(manager, "110") == resolve_dims(manager, [0, 1])
        assert resolve_dims(manager, "001") == (2,)

    def test_indices_deduplicated_sorted(self, manager):
        assert resolve_dims(manager, [2, 0, 2]) == (0, 2)

    def test_out_of_range_index(self, manager):
        with pytest.raises(HypercubeError):
            resolve_dims(manager, [3])

    def test_empty(self, manager):
        with pytest.raises(HypercubeError):
            resolve_dims(manager, [])


class TestSliceGroups:
    def test_x_groups(self, manager):
        groups = slice_groups(manager, "100")
        assert len(groups) == 8  # 4y * 2z instances
        assert all(g.size == 4 for g in groups)
        # Group 0 is the x-line at y=0, z=0 -> consecutive PEs 0..3.
        assert groups[0].pe_ids == (0, 1, 2, 3)

    def test_y_groups_stride_by_x(self, manager):
        groups = slice_groups(manager, "010")
        assert len(groups) == 8
        # Instance 0 fixes x=0, z=0; members step by 4 (the x length).
        assert groups[0].pe_ids == (0, 4, 8, 12)

    def test_xz_plane_groups(self, manager):
        groups = slice_groups(manager, "101")
        assert len(groups) == 4  # one per y
        assert all(g.size == 8 for g in groups)
        # x varies fastest inside the group, then z.
        assert groups[0].pe_ids == (0, 1, 2, 3, 16, 17, 18, 19)

    def test_all_dims_single_group(self, manager):
        groups = slice_groups(manager, "111")
        assert len(groups) == 1
        assert groups[0].pe_ids == tuple(range(32))

    def test_groups_partition_nodes(self, manager):
        for dims in ("100", "010", "001", "110", "101", "011", "111"):
            groups = slice_groups(manager, dims)
            seen = [pe for g in groups for pe in g.pe_ids]
            assert sorted(seen) == list(range(32))

    def test_instances_cover_fixed_coords_in_order(self, manager):
        groups = slice_groups(manager, "001")
        # 16 instances (4x * 4y); instance order must follow node order
        # of the fixed coordinates (x fastest).
        assert len(groups) == 16
        assert groups[0].pe_ids == (0, 16)
        assert groups[1].pe_ids == (1, 17)
        assert groups[4].pe_ids == (4, 20)

    def test_group_size_helper(self, manager):
        assert group_size(manager, "100") == 4
        assert group_size(manager, "101") == 8
        assert group_size(manager, "111") == 32


class TestCommGroup:
    def test_rank_of(self):
        group = CommGroup(instance=0, pe_ids=(5, 9, 13))
        assert group.rank_of(9) == 1

    def test_rank_of_missing(self):
        group = CommGroup(instance=0, pe_ids=(5, 9))
        with pytest.raises(HypercubeError, match="not in communication group"):
            group.rank_of(7)
