"""Tests for the public API surface, validation sweep, and CLI."""

import inspect

import numpy as np
import pytest

import repro
from repro import (
    ALL_PRIMITIVES,
    BASELINE,
    CommResult,
    Communicator,
    DimmSystem,
    HypercubeManager,
    PidCommError,
    pidcomm_allreduce,
    pidcomm_alltoall,
    pidcomm_broadcast,
    pidcomm_gather,
)
from repro.__main__ import EXPERIMENTS, main
from repro.core.validation import verify_collectives
from repro.dtypes import INT32
from repro.errors import CollectiveError


@pytest.fixture
def manager():
    return HypercubeManager(DimmSystem.small(mram_bytes=1 << 16),
                            shape=(4, 8))


class TestApiSurface:
    def test_all_primitives_listed(self):
        assert len(ALL_PRIMITIVES) == 8

    def test_string_dtype_and_op_accepted(self, manager):
        system = manager.system
        src, dst = system.alloc(32), system.alloc(32)
        system.write_elements(0, src, np.arange(8, dtype=np.int32), INT32)
        result = pidcomm_allreduce(manager, "10", 32, src, dst,
                                   data_type="int32",
                                   reduction_type="max")
        assert isinstance(result, CommResult)
        assert result.seconds > 0

    def test_unknown_dtype_rejected(self, manager):
        with pytest.raises(CollectiveError, match="unknown data type"):
            pidcomm_alltoall(manager, "10", 32, 0, 0, data_type="quad",
                             functional=False)

    def test_unknown_op_rejected(self, manager):
        with pytest.raises(CollectiveError, match="unknown reduce op"):
            pidcomm_allreduce(manager, "10", 32, 0, 0,
                              reduction_type="xor", functional=False)

    def test_commresult_carries_plan_and_ledger(self, manager):
        result = pidcomm_alltoall(manager, "10", 32, 0, 32,
                                  functional=False)
        assert result.plan.primitive == "alltoall"
        assert result.ledger.total == pytest.approx(result.seconds)
        assert result.host_outputs is None

    def test_gather_outputs_typed(self, manager):
        system = manager.system
        src = system.alloc(16)
        for pe in manager.all_pes:
            system.write_elements(pe, src, np.array([pe, pe],
                                                    dtype=np.int32), INT32)
        result = pidcomm_gather(manager, "10", 16, src, data_type="int32")
        out = result.host_outputs[0]
        assert out.dtype == np.int32

    def test_baseline_config_through_api(self, manager):
        fast = pidcomm_alltoall(manager, "10", 1 << 12, 0, 0,
                                functional=False)
        slow = pidcomm_alltoall(manager, "10", 1 << 12, 0, 0,
                                config=BASELINE, functional=False)
        assert slow.plan.meta["config"] == "Baseline"
        assert fast.plan.meta["config"] == "+CM"

    def test_broadcast_payload_size_checked(self, manager):
        with pytest.raises(PidCommError):
            pidcomm_broadcast(manager, "10", 16, 0,
                              payloads={i: np.arange(1) for i in range(8)})


_FULL_REPR = "OptConfig(pe_reorder=True, in_register=True, cross_domain=True)"

#: Snapshot of the exported public API.  A redesign that renames,
#: drops, or re-types anything here must update this table *and* the
#: docs -- the point is that it fails loudly, not silently.
EXPECTED_EXPORTS = {
    "DimmSystem", "DimmGeometry", "MachineParams", "HypercubeManager",
    "OptConfig", "BASELINE", "PR_ONLY", "PR_IM", "FULL", "ABLATION_LADDER",
    "Schedule",
    "Communicator", "CommRequest", "CommResult", "CommFuture",
    "BatchResult", "PlanCache", "EngineStats", "SessionConfig",
    "CollectiveServer", "Session", "TenantSpec",
    "FaultInjector", "FaultSpec", "RetryPolicy", "ReliabilityPolicy",
    "RELIABLE", "FAIL_FAST",
    "ALL_PRIMITIVES", "ALL_TYPES", "ALL_OPS",
    "dtype_by_name", "op_by_name", "PidCommError",
    "pidcomm_alltoall", "pidcomm_allgather", "pidcomm_reduce_scatter",
    "pidcomm_allreduce", "pidcomm_scatter", "pidcomm_gather",
    "pidcomm_reduce", "pidcomm_broadcast",
}

EXPECTED_LEGACY_SIGNATURES = {
    "pidcomm_alltoall":
        "(manager: 'HypercubeManager', comm_dimensions: 'str | Sequence[int]',"
        " total_data_size: 'int', src_offset: 'int', dst_offset: 'int',"
        " data_type: 'DataType | str' = 'int64',"
        f" config: 'OptConfig' = {_FULL_REPR},"
        " functional: 'bool' = True) -> 'CommResult'",
    "pidcomm_allgather":
        "(manager: 'HypercubeManager', comm_dimensions: 'str | Sequence[int]',"
        " total_data_size: 'int', src_offset: 'int', dst_offset: 'int',"
        " data_type: 'DataType | str' = 'int64',"
        f" config: 'OptConfig' = {_FULL_REPR},"
        " functional: 'bool' = True) -> 'CommResult'",
    "pidcomm_reduce_scatter":
        "(manager: 'HypercubeManager', comm_dimensions: 'str | Sequence[int]',"
        " total_data_size: 'int', src_offset: 'int', dst_offset: 'int',"
        " data_type: 'DataType | str' = 'int64',"
        " reduction_type: 'ReduceOp | str' = 'sum',"
        f" config: 'OptConfig' = {_FULL_REPR},"
        " functional: 'bool' = True) -> 'CommResult'",
    "pidcomm_allreduce":
        "(manager: 'HypercubeManager', comm_dimensions: 'str | Sequence[int]',"
        " total_data_size: 'int', src_offset: 'int', dst_offset: 'int',"
        " data_type: 'DataType | str' = 'int64',"
        " reduction_type: 'ReduceOp | str' = 'sum',"
        f" config: 'OptConfig' = {_FULL_REPR},"
        " functional: 'bool' = True) -> 'CommResult'",
    "pidcomm_scatter":
        "(manager: 'HypercubeManager', comm_dimensions: 'str | Sequence[int]',"
        " total_data_size: 'int', dst_offset: 'int',"
        " data_type: 'DataType | str' = 'int64',"
        " payloads: 'Mapping[int, np.ndarray] | None' = None,"
        f" config: 'OptConfig' = {_FULL_REPR},"
        " functional: 'bool' = True) -> 'CommResult'",
    "pidcomm_gather":
        "(manager: 'HypercubeManager', comm_dimensions: 'str | Sequence[int]',"
        " total_data_size: 'int', src_offset: 'int',"
        " data_type: 'DataType | str' = 'int64',"
        f" config: 'OptConfig' = {_FULL_REPR},"
        " functional: 'bool' = True) -> 'CommResult'",
    "pidcomm_reduce":
        "(manager: 'HypercubeManager', comm_dimensions: 'str | Sequence[int]',"
        " total_data_size: 'int', src_offset: 'int',"
        " data_type: 'DataType | str' = 'int64',"
        " reduction_type: 'ReduceOp | str' = 'sum',"
        f" config: 'OptConfig' = {_FULL_REPR},"
        " functional: 'bool' = True) -> 'CommResult'",
    "pidcomm_broadcast":
        "(manager: 'HypercubeManager', comm_dimensions: 'str | Sequence[int]',"
        " total_data_size: 'int', dst_offset: 'int',"
        " data_type: 'DataType | str' = 'int64',"
        " payloads: 'Mapping[int, np.ndarray] | None' = None,"
        f" config: 'OptConfig' = {_FULL_REPR},"
        " functional: 'bool' = True) -> 'CommResult'",
}

_SESSION_COMMON = (
    "(self, comm_dimensions: 'str | Sequence[int]', total_data_size: 'int',"
    " *, {buffers} data_type: 'DataType | str' = 'int64',{op}"
    " config: 'OptConfig | None' = None,"
    " functional: 'bool | None' = None) -> 'CommResult'"
)
_SRC_DST = "src_offset: 'int' = 0, dst_offset: 'int' = 0,"
_OP = " reduction_type: 'ReduceOp | str' = 'sum',"
_PAYLOADS = ("dst_offset: 'int' = 0,",
             " payloads: 'Mapping[int, np.ndarray] | None' = None,")

EXPECTED_SESSION_SIGNATURES = {
    "alltoall": _SESSION_COMMON.format(buffers=_SRC_DST, op=""),
    "allgather": _SESSION_COMMON.format(buffers=_SRC_DST, op=""),
    "reduce_scatter": _SESSION_COMMON.format(buffers=_SRC_DST, op=_OP),
    "allreduce": _SESSION_COMMON.format(buffers=_SRC_DST, op=_OP),
    "gather": _SESSION_COMMON.format(buffers="src_offset: 'int' = 0,", op=""),
    "reduce": _SESSION_COMMON.format(buffers="src_offset: 'int' = 0,",
                                     op=_OP),
    "scatter": (
        "(self, comm_dimensions: 'str | Sequence[int]',"
        " total_data_size: 'int', *, dst_offset: 'int' = 0,"
        " data_type: 'DataType | str' = 'int64',"
        " payloads: 'Mapping[int, np.ndarray] | None' = None,"
        " config: 'OptConfig | None' = None,"
        " functional: 'bool | None' = None) -> 'CommResult'"),
    "broadcast": (
        "(self, comm_dimensions: 'str | Sequence[int]',"
        " total_data_size: 'int', *, dst_offset: 'int' = 0,"
        " data_type: 'DataType | str' = 'int64',"
        " payloads: 'Mapping[int, np.ndarray] | None' = None,"
        " config: 'OptConfig | None' = None,"
        " functional: 'bool | None' = None) -> 'CommResult'"),
    "submit": ("(self, requests: 'Sequence[CommRequest]',"
               " functional: 'bool | None' = None) -> 'BatchResult'"),
}


class TestApiSnapshot:
    """Exported names + signatures, pinned so redesigns fail loudly."""

    def test_exported_names_match_snapshot(self):
        assert set(repro.__all__) == EXPECTED_EXPORTS
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing {name}"

    def test_legacy_signatures_match_snapshot(self):
        for name, expected in EXPECTED_LEGACY_SIGNATURES.items():
            actual = str(inspect.signature(getattr(repro, name)))
            assert actual == expected, f"{name} signature drifted:\n{actual}"

    def test_session_signatures_match_snapshot(self):
        for name, expected in EXPECTED_SESSION_SIGNATURES.items():
            actual = str(inspect.signature(getattr(Communicator, name)))
            assert actual == expected, (
                f"Communicator.{name} signature drifted:\n{actual}")

    def test_session_buffer_arguments_keyword_only(self):
        # The redesign's contract: offsets and payloads never positional.
        for name in ("alltoall", "allgather", "reduce_scatter", "allreduce",
                     "scatter", "gather", "reduce", "broadcast"):
            sig = inspect.signature(getattr(Communicator, name))
            for pname in ("src_offset", "dst_offset", "payloads"):
                if pname in sig.parameters:
                    assert (sig.parameters[pname].kind
                            is inspect.Parameter.KEYWORD_ONLY), (
                        f"Communicator.{name}({pname}) must be keyword-only")


class TestValidationSweep:
    def test_full_sweep_passes(self):
        report = verify_collectives()
        assert report.ok, str(report)
        assert report.checks >= 90

    def test_report_str_mentions_status(self):
        report = verify_collectives(dims_list=("100",),
                                    configs=(BASELINE,))
        assert "OK" in str(report)

    def test_bad_dims_reported_not_raised(self):
        report = verify_collectives(dims_list=("10",))
        assert not report.ok
        assert "does not match shape" in report.failures[0]


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out and "table1" in out

    def test_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "PID-Comm" in out
        assert "regenerated in" in out

    def test_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_registry_complete(self):
        # Every evaluation artifact in DESIGN.md has a CLI entry.
        for name in ("table1", "table3", "fig04", "fig13", "fig14", "fig15",
                     "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
                     "fig22", "fig23a", "fig23b"):
            assert name in EXPERIMENTS
