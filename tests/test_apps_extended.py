"""Extended application coverage: variants, scaling, property sweeps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import HypercubeManager
from repro.analysis.workloads import (
    PAPER_APPS,
    app_manager,
    paper_dlrm,
    paper_gnn,
    paper_mlp,
    testbed as make_testbed,
)
from repro.apps import (
    BaselineCommBackend,
    DlrmApp,
    DlrmConfig,
    GnnApp,
    GnnConfig,
    MlpApp,
    MlpConfig,
    PidCommBackend,
)
from repro.data import criteo_like, rmat_graph
from repro.data.graphs import GraphStats
from repro.errors import AppError
from repro.hw.system import DimmSystem


class TestPaperScaleWorkloads:
    def test_all_paper_apps_run_analytically(self):
        system = make_testbed()
        for name, factory in PAPER_APPS.items():
            manager = app_manager(name, system, 1024)
            result = factory().run(manager, PidCommBackend(),
                                   functional=False)
            assert result.seconds > 0, name
            assert result.output is None
        assert system.touched_pes == 0

    def test_mlp_32k_scales_from_16k(self):
        system = make_testbed()
        manager = app_manager("MLP", system, 1024)
        t16 = paper_mlp(16 * 1024).run(manager, PidCommBackend(),
                                       functional=False).seconds
        t32 = paper_mlp(32 * 1024).run(manager, PidCommBackend(),
                                       functional=False).seconds
        # 4x the weights/flops, 2x the activations: between 2x and 4x.
        assert 2.0 < t32 / t16 < 4.5

    def test_dlrm_dim32_costs_more_than_dim16(self):
        system = make_testbed()
        manager = app_manager("DLRM", system, 1024)
        t16 = paper_dlrm(16).run(manager, PidCommBackend(),
                                 functional=False).seconds
        t32 = paper_dlrm(32).run(manager, PidCommBackend(),
                                 functional=False).seconds
        assert t32 > t16

    def test_gnn_strategies_cost_differently(self):
        system = make_testbed()
        manager = app_manager("GNN", system, 1024)
        rs = paper_gnn("rs_ar").run(manager, PidCommBackend(),
                                    functional=False)
        ag = paper_gnn("ar_ag").run(manager, PidCommBackend(),
                                    functional=False)
        assert rs.per_primitive.keys() != ag.per_primitive.keys()

    def test_graph_stats_blocks_functional_use(self):
        stats = GraphStats(1 << 20, 1 << 22)
        with pytest.raises(AppError, match="no structure"):
            stats.neighbors(0)
        with pytest.raises(AppError, match="no structure"):
            _ = stats.dense

    def test_graph_stats_validation(self):
        with pytest.raises(AppError):
            GraphStats(0, 10)


class TestAppResultContracts:
    def test_comm_seconds_plus_kernel_is_total(self):
        graph = rmat_graph(64, 256, seed=1)
        from repro.apps import BfsApp, BfsConfig
        system = DimmSystem.small(mram_bytes=1 << 20)
        manager = HypercubeManager(system, shape=(32,))
        result = BfsApp(graph, BfsConfig()).run(manager, PidCommBackend())
        assert result.comm_seconds + result.per_primitive["kernel"] == \
            pytest.approx(result.seconds)

    def test_backend_name_recorded(self):
        app = MlpApp(MlpConfig(features=64, layers=1, batch=2))
        system = DimmSystem.small(mram_bytes=1 << 18)
        manager = HypercubeManager(system, shape=(32,))
        result = app.run(manager, BaselineCommBackend(), functional=False)
        assert result.backend == "baseline"

    def test_meta_echoes_config(self):
        app = MlpApp(MlpConfig(features=64, layers=2, batch=4))
        system = DimmSystem.small(mram_bytes=1 << 18)
        manager = HypercubeManager(system, shape=(32,))
        result = app.run(manager, PidCommBackend(), functional=False)
        assert result.meta["features"] == 64
        assert result.meta["layers"] == 2


class TestGnnSweep:
    @given(st.integers(1, 4), st.sampled_from(["rs_ar", "ar_ag"]),
           st.integers(0, 1000))
    @settings(max_examples=12, deadline=None)
    def test_any_layer_count_matches_golden(self, layers, strategy, seed):
        graph = rmat_graph(16, 64, seed=seed)
        app = GnnApp(graph, GnnConfig(features=4, layers=layers,
                                      strategy=strategy, seed=seed))
        system = DimmSystem.small(mram_bytes=1 << 18)
        manager = HypercubeManager(system, shape=(2, 2))
        result = app.run(manager, PidCommBackend(), functional=True)
        np.testing.assert_array_equal(result.output,
                                      result.meta["golden"])

    def test_narrow_widths_cost_less(self):
        system = make_testbed()
        manager = app_manager("GNN", system, 1024)
        times = {}
        for width in ("int8", "int32", "int64"):
            app = paper_gnn("rs_ar", dtype_name=width)
            times[width] = app.run(manager, PidCommBackend(),
                                   functional=False).seconds
        assert times["int8"] < times["int32"] < times["int64"]

    def test_functional_rejects_narrow_widths(self):
        graph = rmat_graph(16, 64, seed=0)
        app = GnnApp(graph, GnnConfig(features=4, layers=1,
                                      dtype_name="int8"))
        system = DimmSystem.small(mram_bytes=1 << 18)
        manager = HypercubeManager(system, shape=(2, 2))
        with pytest.raises(AppError, match="int64"):
            app.run(manager, PidCommBackend(), functional=True)


class TestDlrmSweep:
    @given(st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_random_batches_match_golden(self, seed):
        data = criteo_like(batch_size=32, num_tables=4, num_rows=16,
                           hots=2, seed=seed)
        app = DlrmApp(data, DlrmConfig(embedding_dim=8, mlp_hidden=4,
                                       seed=seed))
        system = DimmSystem.small(mram_bytes=1 << 20)
        manager = HypercubeManager(system, shape=(4, 2, 2))
        result = app.run(manager, PidCommBackend(), functional=True)
        np.testing.assert_array_equal(
            result.output, result.meta["golden"].reshape(-1))

    def test_alternative_cube_shapes(self):
        # Columns over 2 PEs instead of 4, more table shards.
        data = criteo_like(batch_size=32, num_tables=8, num_rows=16,
                           hots=2, seed=3)
        app = DlrmApp(data, DlrmConfig(embedding_dim=8, mlp_hidden=4))
        system = DimmSystem.small(mram_bytes=1 << 20)
        manager = HypercubeManager(system, shape=(2, 2, 8))
        result = app.run(manager, PidCommBackend(), functional=True)
        np.testing.assert_array_equal(
            result.output, result.meta["golden"].reshape(-1))


class TestCpuFormulas:
    def test_all_apps_report_positive_cpu_time(self):
        params = make_testbed().params
        for name, factory in PAPER_APPS.items():
            assert factory().cpu_only_seconds(params) > 0, name

    def test_mlp_cpu_scales_with_model_size(self):
        params = make_testbed().params
        assert paper_mlp(32 * 1024).cpu_only_seconds(params) > \
            paper_mlp(16 * 1024).cpu_only_seconds(params)


class TestModeConsistency:
    """Functional and analytic runs of the same configuration must
    charge identical costs (the app-level form of the plan/estimate
    consistency guarantee)."""

    def test_mlp_ledgers_match_across_modes(self):
        config = MlpConfig(features=64, layers=2, batch=4)
        func_sys = DimmSystem.small(mram_bytes=1 << 18)
        func = MlpApp(config).run(
            HypercubeManager(func_sys, shape=(32,)), PidCommBackend(),
            functional=True)
        ana_sys = DimmSystem.small(mram_bytes=1 << 18)
        ana = MlpApp(config).run(
            HypercubeManager(ana_sys, shape=(32,)), PidCommBackend(),
            functional=False)
        assert func.seconds == pytest.approx(ana.seconds)
        assert func.per_primitive == pytest.approx(ana.per_primitive)
        assert ana_sys.touched_pes == 0 and func_sys.touched_pes == 32

    def test_gnn_ledgers_match_across_modes(self):
        graph = rmat_graph(32, 128, seed=2)
        config = GnnConfig(features=8, layers=2)
        func = GnnApp(graph, config).run(
            HypercubeManager(DimmSystem.small(mram_bytes=1 << 18),
                             shape=(4, 4)),
            PidCommBackend(), functional=True)
        ana = GnnApp(graph, config).run(
            HypercubeManager(DimmSystem.small(mram_bytes=1 << 18),
                             shape=(4, 4)),
            PidCommBackend(), functional=False)
        assert func.seconds == pytest.approx(ana.seconds)


class TestMultiHostBackends:
    def test_pidcomm_beats_baseline_locally(self):
        """Section IX-A: multi-host PID-Comm keeps its advantage over
        the baseline (the local phases dominate)."""
        from repro.core.collectives import BASELINE
        from repro.multihost import MultiHostSystem, multihost_allreduce
        size = 1 << 20
        pid = multihost_allreduce(
            MultiHostSystem(2), size, 0, 0, functional=False)
        base = multihost_allreduce(
            MultiHostSystem(2, config=BASELINE), size, 0, 0,
            functional=False)
        assert base.seconds > 1.5 * pid.seconds
        # The MPI phase is identical either way.
        assert base.mpi_seconds == pytest.approx(pid.mpi_seconds)
