"""Cost-model behaviour of the collective plans.

These tests pin the *mechanisms* the paper attributes to each
technique: in-register modulation removes the host-memory category,
cross-domain modulation removes the domain-transfer category, costs
scale with payload, and analytic runs never touch simulated memory.
"""

import pytest

from repro import ABLATION_LADDER, BASELINE, FULL, PR_IM, PR_ONLY
from repro.core.collectives import (
    plan_allgather,
    plan_allreduce,
    plan_alltoall,
    plan_reduce_scatter,
)
from repro.core.hypercube import HypercubeManager
from repro.dtypes import INT64, SUM
from repro.errors import CollectiveError
from repro.hw.system import DimmSystem

KB = 1 << 10


@pytest.fixture
def testbed():
    """Paper-scale system; analytic only (no memory is ever touched)."""
    return DimmSystem.paper_testbed()


@pytest.fixture
def manager(testbed):
    return HypercubeManager(testbed, shape=(32, 32))


def ladder_ledgers(plan_fn, manager, *args):
    return {config.label: plan_fn(manager, *args, config).estimate(
        manager.system) for config in ABLATION_LADDER}


class TestTechniqueMechanisms:
    SIZE = 256 * KB

    def test_in_register_removes_host_memory(self, manager):
        ledgers = ladder_ledgers(
            plan_alltoall, manager, "11", self.SIZE, 0, self.SIZE, INT64)
        assert ledgers["Baseline"].get("host_mem") > 0
        assert ledgers["+PR"].get("host_mem") > 0
        assert ledgers["+IM"].get("host_mem") == 0
        assert ledgers["+CM"].get("host_mem") == 0

    def test_cross_domain_removes_dt_for_alltoall(self, manager):
        ledgers = ladder_ledgers(
            plan_alltoall, manager, "11", self.SIZE, 0, self.SIZE, INT64)
        assert ledgers["+IM"].get("dt") > 0
        assert ledgers["+CM"].get("dt") == 0

    def test_cross_domain_cannot_remove_dt_for_reduce_scatter(self, manager):
        ledgers = ladder_ledgers(
            plan_reduce_scatter, manager, "11", self.SIZE, 0, self.SIZE,
            INT64, SUM)
        # Arithmetic on 64-bit elements always needs the domain transfer.
        assert ledgers["+CM"].get("dt") > 0

    def test_pe_reorder_moves_work_to_pes(self, manager):
        ledgers = ladder_ledgers(
            plan_alltoall, manager, "11", self.SIZE, 0, self.SIZE, INT64)
        assert ledgers["Baseline"].get("pe") == 0
        assert ledgers["+PR"].get("pe") > 0
        # and the host modulation gets cheaper in exchange
        assert ledgers["+PR"].get("host_mod") < ledgers["Baseline"].get(
            "host_mod")

    def test_ladder_improves_monotonically(self, manager):
        for plan_fn, args in [
            (plan_alltoall, ("11", self.SIZE, 0, self.SIZE, INT64)),
            (plan_allgather, ("11", 8 * KB, 0, self.SIZE, INT64)),
            (plan_reduce_scatter,
             ("11", self.SIZE, 0, self.SIZE, INT64, SUM)),
            (plan_allreduce, ("11", self.SIZE, 0, self.SIZE, INT64, SUM)),
        ]:
            ledgers = ladder_ledgers(plan_fn, manager, *args)
            times = [ledgers[c.label].total for c in ABLATION_LADDER]
            assert times == sorted(times, reverse=True), (
                f"{plan_fn.__name__}: ladder not monotone: {times}")

    def test_full_beats_baseline_by_a_lot(self, manager):
        size = 2 << 20
        ledgers = ladder_ledgers(
            plan_alltoall, manager, "11", size, 0, size, INT64)
        speedup = ledgers["Baseline"].total / ledgers["+CM"].total
        assert speedup > 3.0


class TestScaling:
    def test_cost_grows_with_size(self, manager):
        sizes = [64 * KB, 256 * KB, 1 << 20]
        times = [plan_alltoall(manager, "11", s, 0, s, INT64).estimate(
            manager.system).total for s in sizes]
        assert times[0] < times[1] < times[2]

    def test_byte_linear_beyond_launch(self, manager):
        small = plan_alltoall(manager, "11", 256 * KB, 0, 0, INT64,
                              FULL).estimate(manager.system)
        big = plan_alltoall(manager, "11", 1 << 20, 0, 0, INT64,
                            FULL).estimate(manager.system)
        # Per-byte categories scale 4x; launch stays fixed.
        assert big.get("bus") == pytest.approx(4 * small.get("bus"))
        assert big.get("launch") == pytest.approx(small.get("launch"))

    def test_more_channels_speed_up_bus(self, testbed):
        m1 = HypercubeManager(testbed, shape=(256,))     # 1 channel
        m4 = HypercubeManager(testbed, shape=(1024,))    # 4 channels
        t1 = plan_alltoall(m1, "1", 256 * KB, 0, 0, INT64).estimate(testbed)
        t4 = plan_alltoall(m4, "1", 256 * KB, 0, 0, INT64).estimate(testbed)
        # Same per-PE bytes but 4x total data over 4x channels: the bus
        # seconds stay flat (channel parallelism absorbs the volume).
        assert t4.get("bus") == pytest.approx(t1.get("bus"))
        # The host-side work does not parallelize the same way.
        assert t4.get("host_mod") == pytest.approx(4 * t1.get("host_mod"))

    def test_analytic_run_touches_no_memory(self, manager):
        plan = plan_allreduce(manager, "11", 1 << 20, 0, 1 << 20, INT64, SUM)
        plan.estimate(manager.system)
        assert manager.system.touched_pes == 0


class TestPlanExecuteConsistency:
    """Executing a plan accrues exactly what estimating predicts, and
    estimates are deterministic."""

    def test_estimate_deterministic(self, manager):
        plan = plan_alltoall(manager, "11", 64 * KB, 0, 64 * KB, INT64)
        a = plan.estimate(manager.system)
        b = plan.estimate(manager.system)
        assert a.seconds == b.seconds

    @pytest.mark.parametrize("config", ABLATION_LADDER,
                             ids=[c.label for c in ABLATION_LADDER])
    def test_run_returns_same_ledger_as_estimate(self, config):
        system = DimmSystem.small(mram_bytes=1 << 14)
        manager = HypercubeManager(system, shape=(4, 8))
        src = system.alloc(4 * 64)
        dst = system.alloc(4 * 64)
        plan = plan_alltoall(manager, "10", 4 * 64, src, dst, INT64, config)
        estimated = plan.estimate(system)
        ledger, _ = plan.run(system, functional=True)
        assert ledger.seconds == estimated.seconds


class TestPlanIntrospection:
    def test_meta_fields(self, manager):
        plan = plan_alltoall(manager, "10", 64 * KB, 0, 0, INT64)
        assert plan.meta["primitive"] == "alltoall"
        assert plan.meta["instances"] == 32
        assert plan.meta["group_size"] == 32
        assert plan.meta["config"] == "+CM"

    def test_describe_lists_steps(self, manager):
        plan = plan_allreduce(manager, "11", 64 * KB, 0, 0, INT64, SUM)
        text = plan.describe()
        assert "ReduceExchange" in text
        assert "FanoutFromHost" in text
        assert "PeReorder" in text

    def test_baseline_plan_uses_global_exchange(self, manager):
        plan = plan_alltoall(manager, "11", 64 * KB, 0, 0, INT64, BASELINE)
        assert "HostGlobalExchange" in plan.describe()
        assert "PeReorder" not in plan.describe()

    def test_config_validation(self):
        from repro.core.collectives.config import OptConfig
        with pytest.raises(CollectiveError):
            OptConfig(pe_reorder=False, in_register=True, cross_domain=False)
        with pytest.raises(CollectiveError):
            OptConfig(pe_reorder=True, in_register=False, cross_domain=True)

    def test_labels(self):
        assert BASELINE.label == "Baseline"
        assert PR_ONLY.label == "+PR"
        assert PR_IM.label == "+IM"
        assert FULL.label == "+CM"
