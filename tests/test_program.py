"""Compiled program replay: bit-exact parity with the interpreted oracle.

The compile stage (``core/collectives/program.py``) lowers plan steps
into fused index-table ops; the acceptance bar is that steady-state
replay is indistinguishable from step-by-step interpretation -- same
memory bytes, host outputs, :class:`CostLedger` breakdown,
:class:`SimdCounter` register ops, and WRAM tile counts -- across every
primitive, optimization rung, and backend.  This module asserts that
pairwise, checks the fusion structure the lowering is expected to
produce, and covers the engine policy around execution modes, the
bounded LRU plan cache, and the compile/replay stats.
"""

import numpy as np
import pytest

from .helpers import fill_group_inputs, groups_of, make_manager

from repro import (ABLATION_LADDER, BASELINE, Communicator, FULL,
                   FaultInjector, SessionConfig)
from repro.core.collectives.program import (
    CommProgram,
    FanoutScratchOp,
    GatherMoveOp,
    HostPullOp,
    ReduceFoldOp,
    StepOp,
    compile_plan,
)
from repro.dtypes import FLOAT32, INT8, INT32, SUM
from repro.engine.cache import DEFAULT_MAXSIZE, PlanCache
from repro.errors import CollectiveError

PRIMITIVES = ("alltoall", "allgather", "reduce_scatter", "allreduce",
              "gather", "scatter", "reduce", "broadcast")
SHAPE = (4, 8)
BITMAP = "11"
CHUNK = 3


def _run(primitive, config, dtype, backend, execution, seed=0, calls=2):
    """Run ``calls`` identical collectives; returns (outputs, last result).

    The first call compiles (plan and, for compiled sessions, program);
    later calls are the steady state under test.  In-place primitives
    consume their source, so inputs are refilled per call from a
    per-call seed -- identical across execution modes.
    """
    manager = make_manager(SHAPE)
    system = manager.system
    comm = Communicator(manager, SessionConfig(config=config, backend=backend,
                        execution=execution))
    groups = groups_of(manager, BITMAP)
    n = groups[0].size
    item = dtype.itemsize

    if primitive in ("scatter", "broadcast"):
        rng = np.random.default_rng(seed)
        root_elems = n * CHUNK if primitive == "scatter" else CHUNK
        payloads = {g.instance: rng.integers(-99, 100, root_elems)
                    .astype(dtype.np_dtype) for g in groups}
        total = CHUNK * item
        dst = system.alloc(total)
        for _ in range(calls):
            result = getattr(comm, primitive)(
                BITMAP, total, dst_offset=dst, data_type=dtype,
                payloads=payloads)
        outputs = {g.instance: [system.read_elements(pe, dst, CHUNK, dtype)
                                for pe in g.pe_ids] for g in groups}
        return outputs, result

    elems = CHUNK if primitive == "allgather" else n * CHUNK
    total = elems * item
    src = system.alloc(total)
    out_elems = {"alltoall": elems, "reduce_scatter": CHUNK,
                 "allgather": n * CHUNK, "allreduce": elems,
                 "gather": None, "reduce": None}[primitive]
    kwargs = ({"reduction_type": SUM}
              if primitive in ("reduce_scatter", "allreduce", "reduce")
              else {})
    if out_elems is None:
        for call in range(calls):
            fill_group_inputs(system, groups, src, elems, dtype,
                              np.random.default_rng(seed + call))
            result = getattr(comm, primitive)(
                BITMAP, total, src_offset=src, data_type=dtype, **kwargs)
        outputs = {inst: [np.asarray(out).view(dtype.np_dtype).reshape(-1)]
                   for inst, out in result.host_outputs.items()}
        return outputs, result
    dst = system.alloc(out_elems * item)
    for call in range(calls):
        fill_group_inputs(system, groups, src, elems, dtype,
                          np.random.default_rng(seed + call))
        result = getattr(comm, primitive)(
            BITMAP, total, src_offset=src, dst_offset=dst, data_type=dtype,
            **kwargs)
    outputs = {g.instance: [system.read_elements(pe, dst, out_elems, dtype)
                            for pe in g.pe_ids] for g in groups}
    return outputs, result


def _assert_parity(primitive, config, dtype, backend, seed=0):
    i_out, i_res = _run(primitive, config, dtype, backend, "interpreted",
                        seed)
    c_out, c_res = _run(primitive, config, dtype, backend, "compiled", seed)
    assert i_out.keys() == c_out.keys()
    for inst in i_out:
        for a, b in zip(i_out[inst], c_out[inst]):
            np.testing.assert_array_equal(a, b)
    assert i_res.ledger.breakdown() == c_res.ledger.breakdown()
    assert i_res.simd == c_res.simd
    assert i_res.wram_tiles == c_res.wram_tiles
    assert i_res.execution == "interpreted"
    assert c_res.execution == "compiled"
    assert c_res.cached  # the steady-state call hit the plan cache


class TestReplayParity:
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    @pytest.mark.parametrize("primitive", PRIMITIVES)
    @pytest.mark.parametrize("config", ABLATION_LADDER,
                             ids=lambda c: c.label)
    def test_every_rung_matches(self, primitive, config, backend):
        _assert_parity(primitive, config, INT32, backend)

    @pytest.mark.parametrize("primitive", PRIMITIVES)
    @pytest.mark.parametrize("dtype", [INT8, FLOAT32],
                             ids=lambda d: d.name)
    def test_other_dtypes_match(self, primitive, dtype):
        # FLOAT32 is the fold-order canary: ReduceFoldOp must fold
        # slots left-to-right exactly like the interpreted backends.
        _assert_parity(primitive, FULL, dtype, "vectorized", seed=7)


def _program_of(comm) -> CommProgram:
    entry = list(comm.cache._plans.values())[-1]
    assert entry.program is not None
    return entry.program


class TestFusionStructure:
    def _comm(self, execution="compiled"):
        manager = make_manager(SHAPE)
        return manager, Communicator(manager, SessionConfig(backend="vectorized",
                                     execution=execution))

    def test_alltoall_fuses_to_one_gather_move(self):
        manager, comm = self._comm()
        groups = groups_of(manager, BITMAP)
        n = groups[0].size
        total = n * CHUNK * 4
        src = manager.system.alloc(total)
        dst = manager.system.alloc(total)
        fill_group_inputs(manager.system, groups, src, n * CHUNK, INT32,
                          np.random.default_rng(0))
        comm.alltoall(BITMAP, total, src_offset=src, dst_offset=dst,
                      data_type=INT32)
        program = _program_of(comm)
        # Launch lowers to nothing; PeReorder + RotateExchange +
        # PeReorder compose into a single fancy-index dispatch.
        assert program.fully_lowered
        assert len(program.ops) == 1
        assert isinstance(program.ops[0], GatherMoveOp)
        assert program.total_steps == 4
        assert program.fused_away == 2

    def test_allreduce_fuses_fanout_with_reflect(self):
        manager, comm = self._comm()
        groups = groups_of(manager, BITMAP)
        n = groups[0].size
        total = n * CHUNK * 4
        src = manager.system.alloc(total)
        dst = manager.system.alloc(total)
        fill_group_inputs(manager.system, groups, src, n * CHUNK, INT32,
                          np.random.default_rng(0))
        comm.allreduce(BITMAP, total, src_offset=src, dst_offset=dst,
                       data_type=INT32, reduction_type=SUM)
        program = _program_of(comm)
        assert program.fully_lowered
        assert [type(op) for op in program.ops] == [
            GatherMoveOp, ReduceFoldOp, FanoutScratchOp]
        assert program.fused_away == 1

    def test_conventional_reduce_mixes_pull_and_fallback(self):
        manager, comm = self._comm()
        groups = groups_of(manager, BITMAP)
        n = groups[0].size
        total = n * CHUNK * 4
        src = manager.system.alloc(total)
        fill_group_inputs(manager.system, groups, src, n * CHUNK, INT32,
                          np.random.default_rng(0))
        comm.reduce(BITMAP, total, src_offset=src, data_type=INT32,
                    reduction_type=SUM, config=BASELINE)
        program = _program_of(comm)
        # The host-side reduce has no lowering: it rides along as a
        # StepOp after the lowered gather.
        assert not program.fully_lowered
        kinds = [type(op) for op in program.ops]
        assert HostPullOp in kinds and StepOp in kinds

    def test_baseline_plans_keep_global_exchange_interpreted(self):
        manager, comm = self._comm()
        manager2 = manager  # same session
        groups = groups_of(manager, BITMAP)
        n = groups[0].size
        total = n * CHUNK * 4
        src = manager.system.alloc(total)
        dst = manager.system.alloc(total)
        fill_group_inputs(manager.system, groups, src, n * CHUNK, INT32,
                          np.random.default_rng(0))
        comm.alltoall(BITMAP, total, src_offset=src, dst_offset=dst,
                      data_type=INT32, config=BASELINE)
        program = _program_of(comm)
        assert not program.fully_lowered
        assert any(isinstance(op, StepOp) for op in program.ops)

    def test_priced_ledger_matches_estimate_and_is_a_copy(self):
        manager, comm = self._comm()
        groups = groups_of(manager, BITMAP)
        n = groups[0].size
        total = n * CHUNK * 4
        src = manager.system.alloc(total)
        dst = manager.system.alloc(total)
        fill_group_inputs(manager.system, groups, src, n * CHUNK, INT32,
                          np.random.default_rng(0))
        comm.alltoall(BITMAP, total, src_offset=src, dst_offset=dst,
                      data_type=INT32)
        program = _program_of(comm)
        want = program.plan.estimate(manager.system).breakdown()
        first = program.priced(manager.system)
        assert first.breakdown() == want
        first.add("bus", 1.0)  # mutate the returned copy...
        assert program.priced(manager.system).breakdown() == want

    def test_compile_plan_direct_roundtrip(self):
        # compile_plan is public API: plan.compile(system) sugar.
        manager, comm = self._comm(execution="interpreted")
        groups = groups_of(manager, BITMAP)
        n = groups[0].size
        total = n * CHUNK * 4
        src = manager.system.alloc(total)
        dst = manager.system.alloc(total)
        fill_group_inputs(manager.system, groups, src, n * CHUNK, INT32,
                          np.random.default_rng(3))
        result = comm.alltoall(BITMAP, total, src_offset=src,
                               dst_offset=dst, data_type=INT32)
        program = compile_plan(result.plan, manager.system)
        assert isinstance(program, CommProgram)
        assert "GatherMoveOp" in program.describe()


class TestExecutionPolicy:
    def test_unknown_mode_rejected(self):
        manager = make_manager(SHAPE)
        with pytest.raises(CollectiveError):
            Communicator(manager, SessionConfig(execution="jit"))

    def test_compiled_with_injector_raises(self):
        manager = make_manager(SHAPE)
        comm = Communicator(manager, SessionConfig(execution="compiled",
                            fault_injector=FaultInjector(seed=1),
                            reliability=None))
        comm.reliability = None  # isolate the injector check
        with pytest.raises(CollectiveError):
            comm.alltoall(BITMAP, 128, src_offset=0, dst_offset=4096,
                          data_type=INT32, functional=False)

    def test_compiled_with_reliability_raises(self):
        manager = make_manager(SHAPE)
        comm = Communicator(manager, SessionConfig(execution="compiled",
                            fault_injector=FaultInjector(seed=1)))
        with pytest.raises(CollectiveError):
            comm.alltoall(BITMAP, 128, src_offset=0, dst_offset=4096,
                          data_type=INT32, functional=False)

    def test_auto_with_injector_falls_back_to_interpreted(self):
        manager = make_manager(SHAPE)
        comm = Communicator(manager, SessionConfig(execution="auto",
                            fault_injector=FaultInjector(seed=1)))
        result = comm.alltoall(BITMAP, 128, src_offset=0, dst_offset=4096,
                               data_type=INT32, functional=False)
        assert result.execution == "interpreted"
        assert comm.stats.programs_compiled == 0

    def test_auto_without_injector_compiles(self):
        manager = make_manager(SHAPE)
        comm = Communicator(manager)  # execution defaults to auto
        result = comm.alltoall(BITMAP, 128, src_offset=0, dst_offset=4096,
                               data_type=INT32, functional=False)
        assert result.execution == "compiled"

    def test_analytic_compiled_prices_without_touching_memory(self):
        manager = make_manager(SHAPE)
        comm = Communicator(manager, SessionConfig(functional=False,
                            backend="vectorized", execution="compiled"))
        a = comm.alltoall(BITMAP, 256, src_offset=0, dst_offset=4096,
                          data_type=INT32)
        b = comm.alltoall(BITMAP, 256, src_offset=0, dst_offset=4096,
                          data_type=INT32)
        assert a.ledger.breakdown() == b.ledger.breakdown()
        assert b.cached
        assert manager.system.touched_pes == 0

    def test_stats_count_compiles_and_replays(self):
        manager = make_manager(SHAPE)
        comm = Communicator(manager, SessionConfig(backend="vectorized",
                            execution="compiled"))
        groups = groups_of(manager, BITMAP)
        n = groups[0].size
        total = n * CHUNK * 4
        src = manager.system.alloc(total)
        dst = manager.system.alloc(total)
        for call in range(3):
            fill_group_inputs(manager.system, groups, src, n * CHUNK,
                              INT32, np.random.default_rng(call))
            comm.alltoall(BITMAP, total, src_offset=src, dst_offset=dst,
                          data_type=INT32)
        stats = comm.stats
        assert stats.programs_compiled == 1  # one shape, compiled once
        assert stats.program_replays == 3
        assert stats.plans_compiled == 1 and stats.cache_hits == 2
        snap = stats.snapshot()
        assert snap["programs_compiled"] == 1
        assert snap["program_replays"] == 3
        assert "replay_seconds" in snap and "compile_seconds" in snap
        assert "compiled programs:" in stats.report()


class TestPlanCacheEviction:
    def test_default_bound(self):
        assert PlanCache().maxsize == DEFAULT_MAXSIZE

    def test_lru_eviction_order_and_count(self):
        cache = PlanCache(maxsize=2)
        cache.fetch("a", lambda: "plan-a")
        cache.fetch("b", lambda: "plan-b")
        cache.fetch("a", lambda: "never")   # touch a: b becomes LRU
        cache.fetch("c", lambda: "plan-c")  # evicts b
        assert cache.evictions == 1
        assert "a" in cache and "c" in cache and "b" not in cache
        plan, hit = cache.fetch("b", lambda: "plan-b2")  # must rebuild
        assert not hit and plan == "plan-b2"
        assert cache.evictions == 2  # re-inserting b evicted a (LRU)
        assert "a" not in cache

    def test_eviction_drops_program_with_plan(self):
        cache = PlanCache(maxsize=1)
        cache.fetch("a", lambda: "plan-a")
        prog, hit = cache.fetch_program("a", lambda: "prog-a")
        assert (prog, hit) == ("prog-a", False)
        prog, hit = cache.fetch_program("a", lambda: "never")
        assert (prog, hit) == ("prog-a", True)
        cache.fetch("b", lambda: "plan-b")  # evicts a and its program
        prog, hit = cache.fetch_program("a", lambda: "prog-a2")
        assert (prog, hit) == ("prog-a2", False)  # built, not stored
        assert "a" not in cache

    def test_unbounded_never_evicts(self):
        cache = PlanCache(maxsize=None)
        for i in range(DEFAULT_MAXSIZE + 10):
            cache.fetch(i, lambda i=i: f"plan-{i}")
        assert len(cache) == DEFAULT_MAXSIZE + 10
        assert cache.evictions == 0

    def test_clear_resets_eviction_counter(self):
        cache = PlanCache(maxsize=1)
        cache.fetch("a", lambda: "plan-a")
        cache.fetch("b", lambda: "plan-b")
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0 and len(cache) == 0

    def test_session_surfaces_evictions_through_stats(self):
        manager = make_manager(SHAPE)
        comm = Communicator(manager, SessionConfig(functional=False, cache_size=1))
        comm.alltoall(BITMAP, 128, src_offset=0, dst_offset=4096,
                      data_type=INT32)
        comm.allgather(BITMAP, 128, src_offset=0, dst_offset=4096,
                       data_type=INT32)
        assert comm.cache.evictions == 1
        assert comm.stats.plan_evictions == 1
        assert comm.stats.snapshot()["plan_evictions"] == 1
