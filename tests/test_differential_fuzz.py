"""Property-based differential fuzzing: engine vs. golden reference.

Seeded randomized sweeps drive every primitive through the session
engine over random shapes, dimension bitmaps, dtypes, chunk sizes, and
optimization configs, and require the functional result to match
``core/reference.py`` *bit-exactly* -- both on a healthy system and
under injected transient faults with retry enabled (detection + rewind
means faults may cost attempts but can never alter results).

The tier-1 sweeps are sized to stay fast; the ``fuzz`` marker guards a
longer sweep excluded from the default run (``pytest -m fuzz`` or
``tools/run_fuzz.py`` runs it).
"""

import numpy as np
import pytest

from .helpers import fill_group_inputs, groups_of, make_manager

from repro import (
    ABLATION_LADDER,
    BASELINE,
    Communicator,
    FaultInjector,
    FULL,
    SessionConfig,
)
from repro.core import reference as ref
from repro.dtypes import INT8, INT16, INT32, INT64, SUM

PRIMITIVES = ("alltoall", "allgather", "reduce_scatter", "allreduce",
              "gather", "scatter", "reduce", "broadcast")
SHAPES = ((4, 8), (8, 4), (4, 4, 2), (2, 4, 4), (2, 2, 8), (16, 2))
DTYPES = (INT8, INT16, INT32, INT64)
CONFIGS = tuple(ABLATION_LADDER)


def _random_bitmap(rng: np.random.Generator, ndim: int) -> str:
    while True:
        bits = rng.integers(0, 2, ndim)
        if bits.any():
            return "".join(str(int(b)) for b in bits)


def _random_case(rng: np.random.Generator) -> dict:
    return {
        "primitive": PRIMITIVES[rng.integers(len(PRIMITIVES))],
        "shape": SHAPES[rng.integers(len(SHAPES))],
        "dtype": DTYPES[rng.integers(len(DTYPES))],
        "chunk": int(rng.integers(1, 5)),
        "config": CONFIGS[rng.integers(len(CONFIGS))],
    }


def run_case(rng: np.random.Generator, primitive: str, shape: tuple,
             dtype, chunk: int, config, injector=None,
             backend: str | None = "scalar", execution: str = "auto",
             tile: int | None = None, workers: int = 1,
             autotune: str | None = None, elide: bool = False,
             sparsify: bool = False):
    """One randomized collective, checked bit-exactly against reference.

    Returns the engine's CommResult (so fault sweeps can inspect
    ``attempts``).  ``tile`` streams compiled replays through
    ``stream_tile_bytes``-sized scratch bands; ``workers`` > 1 replays
    them band-parallel across a session worker pool (which must stay
    inside the same oracle).  ``autotune`` hands schedule selection to
    the cost-model tuner -- whatever it picks must also stay inside
    the oracle; ``backend=None`` leaves the backend axis open for it.
    ``elide`` turns on content-aware transfer elision; ``sparsify``
    zeroes a random per-case fraction of every input so the eliding
    replay sees arbitrary mixes of zero, partial-zero, and dense
    chunks -- and must stay bit-exact at every mix.
    """
    manager = make_manager(shape)
    system = manager.system
    comm = Communicator(manager, SessionConfig(
        config=config, fault_injector=injector, backend=backend,
        execution=execution, stream_tile_bytes=tile,
        parallel_workers=workers, autotune=autotune,
        elide_transfers=elide))
    bitmap = _random_bitmap(rng, manager.ndim)
    groups = groups_of(manager, bitmap)
    n = groups[0].size
    item = dtype.itemsize
    sparsity = float(rng.choice((0.0, 0.25, 0.5, 0.9, 1.0))) \
        if sparsify else 0.0

    def _sparsified(values: np.ndarray) -> np.ndarray:
        if sparsity:
            values[rng.random(values.size) < sparsity] = 0
        return values

    if primitive in ("scatter", "broadcast"):
        root_elems = n * chunk if primitive == "scatter" else chunk
        payloads = {g.instance: _sparsified(
            rng.integers(-99, 100, root_elems).astype(dtype.np_dtype))
            for g in groups}
        total = chunk * item
        dst = system.alloc(total)
        method = getattr(comm, primitive)
        result = method(bitmap, total, dst_offset=dst, data_type=dtype,
                        payloads=payloads)
        for group in groups:
            if primitive == "scatter":
                want = ref.scatter(payloads[group.instance], n)
            else:
                want = ref.broadcast(payloads[group.instance], n)
            for pe, expect in zip(group.pe_ids, want):
                np.testing.assert_array_equal(
                    system.read_elements(pe, dst, chunk, dtype), expect)
        return result

    elems = chunk if primitive == "allgather" else n * chunk
    total = elems * item
    src = system.alloc(total)
    inputs = fill_group_inputs(system, groups, src, elems, dtype, rng)
    if sparsity:
        for group in groups:
            for pe, values in zip(group.pe_ids, inputs[group.instance]):
                system.write_elements(pe, src, _sparsified(values), dtype)

    if primitive == "gather":
        result = comm.gather(bitmap, total, src_offset=src, data_type=dtype)
        for group in groups:
            want = ref.gather(inputs[group.instance])
            got = np.asarray(result.host_outputs[group.instance]).view(
                dtype.np_dtype).reshape(-1)
            np.testing.assert_array_equal(got, want)
        return result
    if primitive == "reduce":
        result = comm.reduce(bitmap, total, src_offset=src, data_type=dtype,
                             reduction_type=SUM)
        for group in groups:
            want = ref.reduce(inputs[group.instance], SUM)
            got = np.asarray(result.host_outputs[group.instance]).view(
                dtype.np_dtype).reshape(-1)
            np.testing.assert_array_equal(got, want)
        return result

    out_elems = {"alltoall": elems, "reduce_scatter": chunk,
                 "allgather": n * chunk, "allreduce": elems}[primitive]
    dst = system.alloc(out_elems * item)
    method = getattr(comm, primitive)
    if primitive in ("reduce_scatter", "allreduce"):
        result = method(bitmap, total, src_offset=src, dst_offset=dst,
                        data_type=dtype, reduction_type=SUM)
    else:
        result = method(bitmap, total, src_offset=src, dst_offset=dst,
                        data_type=dtype)
    reference_fn = {"alltoall": lambda v: ref.alltoall(v),
                    "allgather": lambda v: ref.allgather(v),
                    "reduce_scatter": lambda v: ref.reduce_scatter(v, SUM),
                    "allreduce": lambda v: ref.allreduce(v, SUM)}[primitive]
    for group in groups:
        want = reference_fn(inputs[group.instance])
        for pe, expect in zip(group.pe_ids, want):
            np.testing.assert_array_equal(
                system.read_elements(pe, dst, out_elems, dtype), expect)
    return result


def _sweep(seed: int, cases: int, injector_factory=None,
           backend: str | None = "scalar", execution: str = "auto",
           tile: int | None = None, workers: int = 1,
           autotune: str | None = None, elide: bool = False,
           sparsify: bool = False) -> list:
    rng = np.random.default_rng(seed)
    results = []
    for _ in range(cases):
        case = _random_case(rng)
        injector = injector_factory() if injector_factory else None
        results.append(run_case(rng, injector=injector, backend=backend,
                                execution=execution, tile=tile,
                                workers=workers, autotune=autotune,
                                elide=elide, sparsify=sparsify,
                                **case))
    return results


class TestHealthySweep:
    @pytest.mark.parametrize("execution", ["interpreted", "compiled"])
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_random_cases_match_reference(self, backend, execution):
        _sweep(seed=2024, cases=32, backend=backend, execution=execution)

    @pytest.mark.parametrize("execution", ["interpreted", "compiled"])
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_every_primitive_covered(self, backend, execution):
        # The randomized sweep must not silently skip a primitive:
        # enumerate all eight explicitly at a fixed shape/config.
        rng = np.random.default_rng(5)
        for primitive in PRIMITIVES:
            run_case(rng, primitive, (4, 8), INT64, 2, FULL,
                     backend=backend, execution=execution)

    def test_replay_is_deterministic(self):
        a = [r.plan.primitive for r in _sweep(seed=11, cases=8)]
        b = [r.plan.primitive for r in _sweep(seed=11, cases=8)]
        assert a == b


class TestStreamedSweep:
    """Streamed tiled replay must stay inside the same oracle."""

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_random_cases_match_reference(self, backend):
        # An uneven 33-byte budget forces short bands, band clamping,
        # and last-band remainders across random shapes and chunks.
        results = _sweep(seed=909, cases=24, backend=backend,
                         execution="compiled", tile=33)
        assert all(r.execution == "streamed" for r in results)

    @pytest.mark.parametrize("tile", [33, 257, 1 << 20],
                             ids=lambda t: f"tile{t}")
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_every_primitive_uneven_tiles(self, backend, tile):
        # Tile sizes that do not divide any row or payload evenly
        # (33, 257) plus one larger than every payload (single band).
        rng = np.random.default_rng(5)
        for primitive in PRIMITIVES:
            result = run_case(rng, primitive, (4, 8), INT64, 2, FULL,
                              backend=backend, execution="compiled",
                              tile=tile)
            assert result.execution == "streamed"
            assert result.tiles >= 1


class TestParallelSweep:
    """Worker pools must never leave the oracle, faulted or not."""

    @pytest.mark.parametrize("workers", [2, 7], ids=lambda w: f"w{w}")
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_streamed_parallel_matches_reference(self, backend, workers):
        # Same seed as the streamed sweep: identical cases, now with
        # band-parallel replay -- results must stay bit-exact.
        results = _sweep(seed=909, cases=16, backend=backend,
                         execution="compiled", tile=33, workers=workers)
        assert all(r.execution == "streamed" for r in results)

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_faulted_parallel_falls_back_to_serial(self, backend):
        # A pooled session with an injector attached must take the
        # serial fallback (the injector's RNG is stateful) and still
        # retry to bit-exactness.
        counter = [0]

        def injector_factory():
            counter[0] += 1
            return FaultInjector(seed=counter[0],
                                 bit_flip_rate=0.004, drop_rate=0.003,
                                 timeout_rate=0.003)

        results = _sweep(seed=77, cases=16,
                         injector_factory=injector_factory,
                         backend=backend, workers=4)
        assert all(r is not None for r in results)
        assert any(r.attempts > 1 for r in results), \
            "parallel faulted sweep never exercised a retry"


class TestFaultedSweep:
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_one_percent_faults_still_bit_exact(self, backend):
        # ISSUE acceptance: ~1% per-operation transient fault pressure,
        # every primitive completes bit-identical to the reference, and
        # at least one request needed a retry.  The two backends draw
        # different fault schedules (fewer transfers -> fewer draws),
        # but detection + rewind keeps both bit-exact regardless.
        counter = [0]

        def injector_factory():
            counter[0] += 1
            return FaultInjector(seed=counter[0],
                                 bit_flip_rate=0.004, drop_rate=0.003,
                                 timeout_rate=0.003)

        results = _sweep(seed=77, cases=24,
                         injector_factory=injector_factory,
                         backend=backend)
        assert all(r is not None for r in results)
        assert any(r.attempts > 1 for r in results), \
            "fault sweep never exercised a retry; tune seed/rates"

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_each_primitive_retries_to_exactness(self, backend):
        # Deterministic per-primitive check under heavier pressure.
        rng = np.random.default_rng(13)
        attempts = []
        for i, primitive in enumerate(PRIMITIVES):
            injector = FaultInjector(seed=100 + i, timeout_rate=0.1,
                                     bit_flip_rate=0.05)
            result = run_case(rng, primitive, (4, 8), INT32, 2, BASELINE,
                              injector=injector, backend=backend)
            attempts.append(result.attempts)
        assert max(attempts) > 1


class TestTunedSweep:
    """Autotuned schedules must stay inside the same oracle.

    The tuner may pick any (backend, execution, tile, rung) combination
    per case; whatever it picks, the functional result must still be
    bit-identical to the golden reference.
    """

    @pytest.mark.parametrize("mode", ["offline", "online"])
    def test_random_cases_match_reference(self, mode):
        results = _sweep(seed=606, cases=24, backend=None, autotune=mode)
        assert all(r.schedule is not None for r in results)

    @pytest.mark.parametrize("mode", ["offline", "online"])
    def test_every_primitive_tuned(self, mode):
        rng = np.random.default_rng(5)
        for primitive in PRIMITIVES:
            result = run_case(rng, primitive, (4, 8), INT64, 2, FULL,
                              backend=None, autotune=mode)
            assert result.schedule is not None
            assert result.execution in ("interpreted", "compiled",
                                        "streamed")


class TestElisionSweep:
    """Content-aware elision must stay inside the oracle at any mix.

    The floor is shrunk so the small fuzz payloads actually reach the
    scanner; per-case sparsity is drawn from {0, .25, .5, .9, 1}, so
    the sweep crosses fully-dense, partial-zero-chunk, and all-zero
    traffic through the same replay paths.
    """

    @pytest.fixture(autouse=True)
    def _tiny_floor(self, monkeypatch):
        from repro.core.collectives import program as program_mod
        monkeypatch.setattr(program_mod, "ELIDE_MIN_SOURCE_BYTES", 0)

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_random_sparsity_matches_reference(self, backend):
        _sweep(seed=1717, cases=24, backend=backend, execution="compiled",
               elide=True, sparsify=True)

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_streamed_parallel_eliding_sweep(self, backend):
        results = _sweep(seed=1818, cases=12, backend=backend,
                         execution="compiled", tile=257, workers=4,
                         elide=True, sparsify=True)
        assert all(r.execution == "streamed" for r in results)

    def test_sparse_sweep_actually_elides(self):
        # The random sweep may draw only fold/fanout primitives (no
        # movement op to elide); pin the movement-heavy ones so the
        # activation claim is deterministic, with sparsity still drawn
        # per case.
        rng = np.random.default_rng(1919)
        results = [run_case(rng, primitive, (4, 8), INT64, 2, FULL,
                            backend="vectorized", execution="compiled",
                            elide=True, sparsify=True)
                   for primitive in ("alltoall", "allgather") * 4]
        assert any(r.chunks_elided > 0 for r in results), \
            "eliding sweep never elided a chunk; tune seed/sparsities"


@pytest.mark.fuzz
class TestLongSweep:
    """Excluded from tier-1 (see ``addopts``); run with ``-m fuzz``."""

    def test_long_healthy_sweep(self):
        _sweep(seed=424242, cases=300)

    def test_long_tuned_sweep(self):
        _sweep(seed=515151, cases=150, backend=None, autotune="online")

    def test_long_faulted_sweep(self):
        counter = [0]

        def injector_factory():
            counter[0] += 1
            return FaultInjector(seed=counter[0], bit_flip_rate=0.004,
                                 drop_rate=0.003, timeout_rate=0.003)

        _sweep(seed=434343, cases=200, injector_factory=injector_factory)

class TestMultihostSweep:
    """Rack-scale hierarchy: every fabric topology and pinned global
    algorithm must stay bit-identical to the global reference."""

    TOPOLOGIES = ("fully_connected", "ring", "leaf_spine")

    @staticmethod
    def _fabric(kind: str, hosts: int):
        from repro.multihost import Fabric
        if kind == "ring" and hosts >= 2:
            return Fabric.ring(hosts)
        if kind == "leaf_spine" and hosts % 2 == 0 and hosts >= 4:
            return Fabric.leaf_spine(hosts, 2, spine_gbps=0.25)
        return Fabric.fully_connected(hosts)

    def _run_multihost_case(self, rng, hosts, topology, algorithm,
                            primitive, elide=False, sparsify=False):
        from repro.multihost import (MultiHostSystem, multihost_allgather,
                                     multihost_allreduce,
                                     multihost_alltoall,
                                     multihost_reduce_scatter)
        from repro.engine import SessionConfig
        if algorithm == "halving_doubling" and hosts & (hosts - 1):
            algorithm = None  # inapplicable pin: let the tuner pick
        mh = MultiHostSystem(
            hosts, ranks_per_channel=1, mram_bytes=1 << 16,
            session_config=SessionConfig(backend="vectorized",
                                         elide_transfers=elide),
            fabric=self._fabric(topology, hosts),
            global_algorithm=algorithm)
        tp = mh.total_pes
        if primitive == "allgather":
            elems = int(rng.integers(1, 4)) * 2
            out_elems = tp * elems
        else:
            elems = tp * int(rng.integers(1, 3))
            out_elems = (elems // tp if primitive == "reduce_scatter"
                         else elems)
        buf = mh.alloc(elems * 8)
        out = mh.alloc(out_elems * 8)
        inputs = [rng.integers(-100, 100, elems) for _ in range(tp)]
        if sparsify:
            zero = rng.random(tp) < 0.7
            inputs = [np.zeros(elems, dtype=np.int64) if z else v
                      for v, z in zip(inputs, zero)]
        for gpe, values in enumerate(inputs):
            mh.write_pe(gpe, buf, values, INT64)
        run = {"allreduce": lambda: multihost_allreduce(
                   mh, elems * 8, buf, out, INT64, SUM),
               "alltoall": lambda: multihost_alltoall(
                   mh, elems * 8, buf, out, INT64),
               "reduce_scatter": lambda: multihost_reduce_scatter(
                   mh, elems * 8, buf, out, INT64, SUM),
               "allgather": lambda: multihost_allgather(
                   mh, elems * 8, buf, out, INT64)}[primitive]
        result = run()
        expect = {"allreduce": lambda: ref.allreduce(inputs, SUM),
                  "alltoall": lambda: ref.alltoall(inputs),
                  "reduce_scatter": lambda: ref.reduce_scatter(inputs, SUM),
                  "allgather": lambda: ref.allgather(inputs)}[primitive]()
        for gpe in range(tp):
            np.testing.assert_array_equal(
                mh.read_pe(gpe, out, out_elems, INT64), expect[gpe])
        if algorithm is not None and hosts > 1:
            assert result.global_algorithm == algorithm
        mh.close()
        return result

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_topology_sweep_matches_reference(self, topology):
        rng = np.random.default_rng(606)
        primitives = ("allreduce", "alltoall", "reduce_scatter",
                      "allgather")
        for hosts in (2, 4):
            for primitive in primitives:
                self._run_multihost_case(rng, hosts, topology, None,
                                         primitive)

    def test_algorithm_pin_sweep_matches_reference(self):
        from repro.multihost import GLOBAL_ALGORITHMS
        rng = np.random.default_rng(707)
        for algorithm in GLOBAL_ALGORITHMS:
            for hosts in (3, 4):
                self._run_multihost_case(rng, hosts, "fully_connected",
                                         algorithm, "alltoall")

    def test_sparse_eliding_sweep_matches_reference(self):
        rng = np.random.default_rng(808)
        elided = 0
        for primitive in ("alltoall", "allreduce"):
            for _ in range(3):
                result = self._run_multihost_case(
                    rng, 2, "fully_connected", None, primitive,
                    elide=True, sparsify=True)
                elided += result.elided_fabric_bytes
        assert elided > 0, "sparse multihost sweep never elided bytes"


@pytest.mark.fuzz
class TestLongMultihostSweep:
    """Excluded from tier-1; run with ``-m fuzz``."""

    def test_long_topology_algorithm_grid(self):
        from repro.multihost import GLOBAL_ALGORITHMS
        sweep = TestMultihostSweep()
        rng = np.random.default_rng(919191)
        primitives = ("allreduce", "alltoall", "reduce_scatter",
                      "allgather")
        for topology in TestMultihostSweep.TOPOLOGIES:
            for algorithm in (None,) + GLOBAL_ALGORITHMS:
                for hosts in (2, 3, 4, 8):
                    for primitive in primitives:
                        sweep._run_multihost_case(
                            rng, hosts, topology, algorithm, primitive,
                            elide=bool(rng.integers(2)),
                            sparsify=bool(rng.integers(2)))
