"""Tests for experiment result persistence and drift comparison."""

import json

import pytest

from repro.analysis.persistence import (
    compare_results,
    export_all,
    load_results,
    save_results,
)
from repro.errors import PidCommError


ROWS = [{"primitive": "alltoall", "speedup": 5.5, "note": "x"},
        {"primitive": "broadcast", "speedup": 1.0, "note": "y"}]


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = save_results(tmp_path / "r.json", "fig14", ROWS)
        payload = load_results(path)
        assert payload["experiment"] == "fig14"
        assert payload["rows"] == ROWS
        assert "machine_params" in payload
        assert payload["machine_params"]["host_cores"] == 10

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "rows": []}))
        with pytest.raises(PidCommError, match="schema"):
            load_results(path)

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 1}))
        with pytest.raises(PidCommError, match="malformed"):
            load_results(path)


class TestCompare:
    def _payload(self, rows):
        return {"schema": 1, "experiment": "fig14", "rows": rows}

    def test_identical_runs_have_no_drift(self):
        assert compare_results(self._payload(ROWS),
                               self._payload(ROWS)) == []

    def test_detects_numeric_drift(self):
        changed = [dict(ROWS[0], speedup=6.5), ROWS[1]]
        drifts = compare_results(self._payload(ROWS),
                                 self._payload(changed))
        assert len(drifts) == 1
        assert drifts[0]["column"] == "speedup"
        assert drifts[0]["drift"] == pytest.approx(1.0 / 5.5, rel=1e-3)

    def test_tolerance_respected(self):
        changed = [dict(ROWS[0], speedup=5.51), ROWS[1]]
        assert compare_results(self._payload(ROWS),
                               self._payload(changed),
                               rel_tol=0.05) == []

    def test_missing_column_flagged(self):
        changed = [{"primitive": "alltoall", "note": "x"}, ROWS[1]]
        drifts = compare_results(self._payload(ROWS),
                                 self._payload(changed))
        assert any(d["new"] is None for d in drifts)

    def test_row_count_mismatch_flagged(self):
        drifts = compare_results(self._payload(ROWS),
                                 self._payload(ROWS[:1]))
        assert any(d["column"] == "(row count)" for d in drifts)

    def test_different_experiments_rejected(self):
        other = {"schema": 1, "experiment": "fig15", "rows": []}
        with pytest.raises(PidCommError, match="different experiments"):
            compare_results(self._payload(ROWS), other)

    def test_ignores_strings_and_bools(self):
        a = [{"ok": True, "name": "x", "value": 1.0}]
        b = [{"ok": False, "name": "y", "value": 1.0}]
        assert compare_results(
            {"schema": 1, "experiment": "e", "rows": a},
            {"schema": 1, "experiment": "e", "rows": b}) == []


class TestExportAll:
    def test_selected_export(self, tmp_path):
        written = export_all(tmp_path, names=["table1"])
        assert len(written) == 1
        payload = load_results(written[0])
        assert payload["experiment"] == "table1"
        assert len(payload["rows"]) == 3
