"""Tests for the multi-tenant serving front-end (``repro.serving``).

Covers the SessionConfig redesign, admission/shedding/backpressure
semantics, fair-share scheduling, per-tenant plan-cache partitions and
MRAM quotas, serving-vs-solo parity across all eight collectives and
both backends, and the load generator.  All async tests run under
``asyncio.run`` with the server's modelled clock, so they are fully
deterministic.
"""

import asyncio
import dataclasses
import warnings

import numpy as np
import pytest

import repro.core.api
from repro import (
    CollectiveServer,
    CommRequest,
    Communicator,
    DimmSystem,
    HypercubeManager,
    SessionConfig,
    pidcomm_alltoall,
)
from repro.engine.cache import PlanCache
from repro.errors import (
    AdmissionRejected,
    CollectiveError,
    QuotaExceeded,
    RequestShed,
    ServingError,
    SessionClosed,
)
from repro.serving import (
    MIXES,
    AdmissionQueue,
    FairShareScheduler,
    LoadGenerator,
    TenantLoad,
    TenantSpec,
)
from repro.serving.admission import PendingRequest

from .helpers import make_manager

DIMS = "10"  # group of 8 on the (8, 4) test shape
SIZE = 256   # bytes per PE


def analytic_server(max_queue_depth=64, batch_limit=8):
    manager = make_manager((8, 4))
    return CollectiveServer(manager, SessionConfig(functional=False),
                            max_queue_depth=max_queue_depth,
                            batch_limit=batch_limit)


def request(src=0, dst=8192, size=SIZE, primitive="alltoall"):
    return CommRequest(primitive, DIMS, size, src_offset=src,
                       dst_offset=dst)


def pending(seq, tenant, priority, manager=None):
    manager = manager or make_manager((8, 4))
    req = request()
    norm = req.normalize(manager, SessionConfig().config)
    return PendingRequest(seq=seq, tenant_id=tenant, priority=priority,
                          cost=float(SIZE), request=req, normalized=norm,
                          future=None, arrival=0.0)


# ----------------------------------------------------------------------
# SessionConfig: the constructor redesign
# ----------------------------------------------------------------------
class TestSessionConfig:
    def test_defaults_match_legacy_defaults(self):
        manager = make_manager((8, 4))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no deprecation on new path
            comm = Communicator(manager, SessionConfig())
        assert comm.functional is True
        assert comm.execution == "auto"
        assert comm.session_config == SessionConfig()

    def test_legacy_kwargs_warn_and_route(self):
        manager = make_manager((8, 4))
        with pytest.warns(DeprecationWarning, match="SessionConfig"):
            comm = Communicator(manager, functional=False,
                                execution="interpreted")
        assert comm.session_config == SessionConfig(
            functional=False, execution="interpreted")
        assert comm.functional is False

    def test_legacy_and_session_config_conflict(self):
        manager = make_manager((8, 4))
        with pytest.raises(CollectiveError, match="not both"):
            Communicator(manager, SessionConfig(), functional=False)

    def test_from_kwargs_rejects_unknown(self):
        with pytest.raises(CollectiveError, match="unknown"):
            SessionConfig.from_kwargs(funktional=False)

    def test_frozen(self):
        config = SessionConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.functional = False

    def test_evolve(self):
        config = SessionConfig(functional=False)
        streamed = config.evolve(execution="compiled",
                                 stream_tile_bytes=1 << 12)
        assert streamed.functional is False
        assert streamed.stream_tile_bytes == 1 << 12
        assert config.stream_tile_bytes is None

    def test_validation_preserved(self):
        manager = make_manager((8, 4))
        with pytest.raises(CollectiveError, match="unknown execution mode"):
            Communicator(manager, SessionConfig(execution="jit"))
        with pytest.raises(CollectiveError, match="positive"):
            SessionConfig(stream_tile_bytes=0)

    def test_describe_names_non_defaults_only(self):
        assert SessionConfig().describe() == "SessionConfig()"
        assert "execution=compiled" in \
            SessionConfig(execution="compiled").describe()


class TestShimDeprecation:
    def test_warns_once_per_process(self):
        manager = make_manager((8, 4))
        repro.core.api._legacy_warned = False
        with pytest.warns(DeprecationWarning, match="pidcomm_alltoall"):
            pidcomm_alltoall(manager, DIMS, SIZE, 0, 8192,
                             functional=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call must stay silent
            pidcomm_alltoall(manager, DIMS, SIZE, 0, 8192,
                             functional=False)


# ----------------------------------------------------------------------
# Admission queue unit semantics
# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def test_fifo_per_tenant(self):
        queue = AdmissionQueue(max_depth=4)
        manager = make_manager((8, 4))
        for seq in range(3):
            queue.offer(pending(seq, "a", 1, manager))
        assert [queue.pop("a").seq for _ in range(3)] == [0, 1, 2]

    def test_sheds_newest_of_lowest_priority(self):
        queue = AdmissionQueue(max_depth=3)
        manager = make_manager((8, 4))
        queue.offer(pending(0, "low", 1, manager))
        queue.offer(pending(1, "low", 1, manager))
        queue.offer(pending(2, "mid", 2, manager))
        victim = queue.offer(pending(3, "high", 3, manager))
        assert victim.tenant_id == "low" and victim.seq == 1
        assert queue.pending("low") == 1  # oldest survived
        assert queue.stats.shed == 1

    def test_rejects_when_not_strictly_higher(self):
        queue = AdmissionQueue(max_depth=2)
        manager = make_manager((8, 4))
        queue.offer(pending(0, "a", 2, manager))
        queue.offer(pending(1, "a", 2, manager))
        with pytest.raises(AdmissionRejected):
            queue.offer(pending(2, "b", 2, manager))  # equal: no churn
        with pytest.raises(AdmissionRejected):
            queue.offer(pending(3, "c", 1, manager))  # lower: rejected
        assert queue.stats.rejected == 2

    def test_evict_tenant(self):
        queue = AdmissionQueue(max_depth=4)
        manager = make_manager((8, 4))
        queue.offer(pending(0, "a", 1, manager))
        queue.offer(pending(1, "b", 1, manager))
        dropped = queue.evict_tenant("a")
        assert [e.seq for e in dropped] == [0]
        assert len(queue) == 1 and queue.pending_tenants() == ["b"]


# ----------------------------------------------------------------------
# Fair-share scheduler unit semantics
# ----------------------------------------------------------------------
class TestFairShareScheduler:
    def test_equal_weights_alternate(self):
        sched = FairShareScheduler()
        sched.register("a"), sched.register("b")
        order = []
        for _ in range(6):
            tenant = sched.pick(["a", "b"])
            sched.charge(tenant, 100.0)
            order.append(tenant)
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_weight_earns_proportional_share(self):
        sched = FairShareScheduler()
        sched.register("heavy", weight=2.0)
        sched.register("light", weight=1.0)
        served = {"heavy": 0, "light": 0}
        for _ in range(30):
            tenant = sched.pick(["heavy", "light"])
            sched.charge(tenant, 100.0)
            served[tenant] += 1
        assert served["heavy"] == 2 * served["light"]

    def test_idle_tenant_cannot_bank_credit(self):
        sched = FairShareScheduler()
        sched.register("busy"), sched.register("idle")
        for _ in range(10):
            sched.charge("busy", 100.0)
        sched.activate("idle")
        assert sched.virtual_time["idle"] == sched.vclock

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            FairShareScheduler().register("a", weight=0.0)


# ----------------------------------------------------------------------
# Server: overload, backpressure, fairness (deterministic asyncio)
# ----------------------------------------------------------------------
class TestOverload:
    def test_full_queue_sheds_lowest_priority_first(self):
        async def scenario():
            server = analytic_server(max_queue_depth=4)
            low = server.session("low", priority=1)
            high = server.session("high", priority=3)
            low_futures = [low.submit(request(dst=8192 + i * SIZE))
                           for i in range(4)]
            high_future = high.submit(request())
            # The newest low request was shed; the high one is queued.
            with pytest.raises(RequestShed):
                await low_futures[-1]
            assert server.pending == 4
            await server.drain()
            assert (await high_future).seconds > 0
            for future in low_futures[:-1]:
                assert (await future).seconds > 0
            assert low.stats.shed == 1 and high.stats.shed == 0
        asyncio.run(scenario())

    def test_not_higher_priority_is_rejected(self):
        async def scenario():
            server = analytic_server(max_queue_depth=2)
            a = server.session("a", priority=2)
            b = server.session("b", priority=2)
            c = server.session("c", priority=1)
            a.submit(request())
            a.submit(request())
            with pytest.raises(AdmissionRejected):
                b.submit(request())  # equal priority cannot displace
            with pytest.raises(AdmissionRejected):
                c.submit(request())  # lower certainly cannot
            assert b.stats.rejected == 1 and c.stats.rejected == 1
            await server.drain()
        asyncio.run(scenario())

    def test_admitted_requests_never_dropped(self):
        # Backpressure invariant: every submitted request ends in
        # exactly one of {completed, shed, rejected}; anything the
        # scheduler dispatched always completes.
        async def scenario():
            server = analytic_server(max_queue_depth=6)
            sessions = {name: server.session(name, priority=p)
                        for name, p in
                        (("bulk", 1), ("steady", 2), ("urgent", 3))}
            futures, rejected = [], 0
            for wave in range(6):
                for name, session in sessions.items():
                    for i in range(3):
                        try:
                            futures.append(session.submit(
                                request(dst=8192 + i * SIZE)))
                        except AdmissionRejected:
                            rejected += 1
                server.process(max_batches=1)
            await server.drain()
            done = await asyncio.gather(*futures, return_exceptions=True)
            completed = sum(1 for r in done
                            if not isinstance(r, BaseException))
            shed = sum(1 for r in done if isinstance(r, RequestShed))
            assert completed + shed == len(futures)
            assert completed + shed + rejected == 6 * 3 * 3
            stats = server.stats
            assert sum(t.completed for t in stats.tenants.values()) \
                == completed
            assert stats.dispatched == completed
        asyncio.run(scenario())

    def test_fair_share_prevents_starvation(self):
        # A greedy tenant floods 20 requests before a modest tenant's
        # 5; equal weights must interleave them 1:1 until the modest
        # tenant is fully served, bounding its goodput ratio.
        async def scenario():
            server = analytic_server(max_queue_depth=64, batch_limit=1)
            greedy = server.session("greedy")
            modest = server.session("modest")
            futures = [greedy.submit(request()) for _ in range(20)]
            futures += [modest.submit(request()) for _ in range(5)]
            await server.drain()
            await asyncio.gather(*futures)
            log = server.stats.execution_log
            window = log[:10]
            assert window.count("modest") == 5, log
            ratio = window.count("greedy") / window.count("modest")
            assert 0.4 <= ratio <= 2.5
            assert all(t == "greedy" for t in log[10:])
        asyncio.run(scenario())

    def test_weighted_share(self):
        async def scenario():
            server = analytic_server(batch_limit=1)
            heavy = server.session("heavy", weight=2.0)
            light = server.session("light", weight=1.0)
            futures = [heavy.submit(request()) for _ in range(12)]
            futures += [light.submit(request()) for _ in range(12)]
            server.process(max_batches=9)
            log = server.stats.execution_log
            assert log.count("heavy") == 6 and log.count("light") == 3
            await server.drain()
            await asyncio.gather(*futures)
        asyncio.run(scenario())


class TestQuotasAndLifecycle:
    def test_mram_quota_enforced(self):
        async def scenario():
            server = analytic_server()
            capped = server.session("capped", mram_quota_bytes=512)
            capped.submit(request(size=128))  # 256 B footprint: fine
            with pytest.raises(QuotaExceeded, match="capped"):
                capped.submit(request(size=1024))
            assert capped.stats.rejected == 1
            await server.drain()
        asyncio.run(scenario())

    def test_duplicate_tenant_rejected(self):
        server = analytic_server()
        server.session("a")
        with pytest.raises(ServingError, match="already"):
            server.session("a")

    def test_close_fails_queued_and_refuses_new(self):
        async def scenario():
            server = analytic_server()
            session = server.session("a")
            future = session.submit(request())
            session.close()
            with pytest.raises(SessionClosed):
                await future
            with pytest.raises(SessionClosed):
                session.submit(request())
            # A closed id can be re-opened.
            again = server.session("a")
            result = await again.run(request())
            assert result.seconds > 0
        asyncio.run(scenario())

    def test_background_serving_context(self):
        async def scenario():
            server = analytic_server()
            session = server.session("a")
            async with server:
                results = await asyncio.gather(
                    session.submit(request()),
                    session.submit(request(src=4096, dst=12288)))
            assert all(r.seconds > 0 for r in results)
        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Plan-cache partitions: per-tenant LRU bounds and isolation
# ----------------------------------------------------------------------
class TestCachePartitions:
    def test_partition_lru_bound(self):
        cache = PlanCache(maxsize=64)
        part = cache.partition("t", maxsize=2)
        for key in ("k1", "k2", "k3"):
            part.fetch(key, lambda k=key: f"plan-{k}")
        assert len(part) == 2
        assert part.counters()["evictions"] == 1
        assert "k1" not in part and "k3" in part

    def test_partitions_isolate_tenants(self):
        manager = make_manager((8, 4))
        comm = Communicator(manager, SessionConfig(functional=False))
        comm.cache.partition("noisy", maxsize=1)
        stable = CommRequest("alltoall", DIMS, SIZE, dst_offset=8192,
                             tenant="quiet")
        comm.submit([stable])
        # The noisy tenant cycles shapes through its 1-slot partition.
        for size in (SIZE, 2 * SIZE, 4 * SIZE):
            comm.submit([CommRequest("alltoall", DIMS, size,
                                     dst_offset=8192, tenant="noisy")])
        result = comm.submit([stable]).futures[0].result()
        assert result.cached, "noisy tenant evicted quiet tenant's plan"
        parts = comm.stats.plan_partitions
        assert parts["noisy"]["evictions"] == 2
        assert parts["quiet"]["hits"] == 1
        assert "plan-cache partitions:" in comm.stats.report()

    def test_server_session_carves_bounded_partition(self):
        async def scenario():
            server = analytic_server()
            session = server.session("t", plan_cache_slots=2)
            for size in (SIZE, 2 * SIZE, 4 * SIZE):
                await session.run(request(size=size))
            counters = server.comm.cache.partition_counters()["t"]
            assert counters["plans"] == 2 and counters["evictions"] == 1
        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Serving parity: identical results to a solo Communicator
# ----------------------------------------------------------------------
def _parity_requests(group, instances):
    """One request per primitive, exercising src/dst/payload paths."""
    elems = SIZE // 8
    scatter_payload = {inst: np.arange(group * elems, dtype=np.int64) + inst
                       for inst in range(instances)}
    bcast_payload = {inst: np.arange(elems, dtype=np.int64) - inst
                     for inst in range(instances)}
    return [
        CommRequest("alltoall", DIMS, SIZE, src_offset=0, dst_offset=8192),
        CommRequest("allgather", DIMS, SIZE, src_offset=0,
                    dst_offset=16384),
        CommRequest("reduce_scatter", DIMS, SIZE, src_offset=0,
                    dst_offset=8192),
        CommRequest("allreduce", DIMS, SIZE, src_offset=4096,
                    dst_offset=8192),
        CommRequest("gather", DIMS, SIZE, src_offset=4096),
        CommRequest("reduce", DIMS, SIZE, src_offset=20480),
        CommRequest("scatter", DIMS, SIZE, dst_offset=24576,
                    payloads=scatter_payload),
        CommRequest("broadcast", DIMS, SIZE, dst_offset=28672,
                    payloads=bcast_payload),
    ]


@pytest.mark.parametrize("backend", ["scalar", "vectorized"])
class TestServingParity:
    def test_bit_identical_results_and_ledgers(self, backend):
        from repro.dtypes import INT64

        def build():
            manager = make_manager((8, 4), mram_bytes=1 << 16)
            values = np.arange(SIZE // 8, dtype=np.int64)
            for pe in manager.all_pes:
                for offset in (0, 4096, 20480):
                    manager.system.write_elements(pe, offset, values + pe,
                                                  INT64)
            return manager

        solo_manager, served_manager = build(), build()
        group = 8
        instances = len(solo_manager.all_pes) // group
        config = SessionConfig(backend=backend)

        solo = Communicator(solo_manager, config)
        solo_results = [solo.submit([req]).futures[0].result()
                        for req in _parity_requests(group, instances)]

        async def serve():
            server = CollectiveServer(served_manager, config)
            session = server.session("tenant")
            futures = [session.submit(req)
                       for req in _parity_requests(group, instances)]
            await server.drain()
            return [await f for f in futures]

        served_results = asyncio.run(serve())

        for solo_result, served_result in zip(solo_results, served_results):
            assert served_result.ledger.total \
                == pytest.approx(solo_result.ledger.total, rel=0, abs=0)
            if solo_result.host_outputs is None:
                assert served_result.host_outputs is None
            else:
                for inst, expected in solo_result.host_outputs.items():
                    np.testing.assert_array_equal(
                        served_result.host_outputs[inst], expected)
        # Whole-MRAM bit identity on every PE.
        for pe in solo_manager.all_pes:
            np.testing.assert_array_equal(
                served_manager.system.memory(pe).read(0, 1 << 16),
                solo_manager.system.memory(pe).read(0, 1 << 16))
        # Ledger totals aggregate identically too.
        assert sum(r.seconds for r in served_results) \
            == pytest.approx(sum(r.seconds for r in solo_results))


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------
class TestLoadGenerator:
    def _run(self, seed=3):
        async def scenario():
            server = analytic_server(max_queue_depth=256)
            gen = LoadGenerator(
                server,
                [TenantLoad("dlrm", "dlrm_burst", weight=2.0),
                 TenantLoad("gnn", "gnn_epoch"),
                 TenantLoad("bfs", "bfs_frontier", priority=2)],
                dims=DIMS, seed=seed)
            return await gen.run(rounds=3)
        return asyncio.run(scenario())

    def test_all_mixes_complete(self):
        report = self._run()
        assert set(report["tenants"]) == {"dlrm", "gnn", "bfs"}
        for tenant in report["tenants"].values():
            assert tenant["completed"] == tenant["submitted"] > 0
            assert tenant["p99_ms"] >= tenant["p50_ms"] > 0
        assert report["goodput_bytes_per_second"] > 0
        assert report["clock_seconds"] > 0

    def test_reproducible_per_seed(self):
        assert self._run(seed=11) == self._run(seed=11)

    def test_mix_registry(self):
        assert set(MIXES) == {"dlrm_burst", "gnn_epoch", "bfs_frontier",
                              "moe_route"}
        with pytest.raises(ValueError, match="unknown mix"):
            TenantLoad("x", "mapreduce")

    def test_tenant_spec_validation(self):
        with pytest.raises(ValueError):
            TenantSpec("t", weight=-1.0)
        with pytest.raises(ValueError):
            TenantSpec("", priority=1)
