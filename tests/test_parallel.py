"""Concurrency battery for the parallel replay engine.

``SessionConfig(parallel_workers=N)`` fans hazard-independent batch
waves and streamed row bands across a session-owned
:class:`~repro.engine.WorkerPool`.  The contract under test: the
scalar interpreter stays the bit-exact oracle, and parallelism changes
*wall-clock only* -- every result byte, MRAM image, CostLedger total,
tile count and cache counter is identical at every worker count.

The battery covers the pool itself (ordering, per-thread scratch,
nested-inline execution, exception propagation), bit-parity of all
eight primitives across worker counts x backends x streamed/untiled
replay, ledger/stat invariance, 20-run MRAM determinism, wave
parallelism and its serial fallback, the stream-table concurrent
first-touch regression, and arena growth under concurrent touches.
Run under ``PYTHONFAULTHANDLER=1`` in CI so a deadlock dumps stacks.
"""

import threading
import time

import numpy as np
import pytest

from .helpers import fill_group_inputs, groups_of, make_manager
from .test_differential_fuzz import PRIMITIVES, run_case

from repro import (
    Communicator,
    CommRequest,
    FaultInjector,
    FULL,
    RELIABLE,
    SessionConfig,
)
from repro.analysis.trace import render_parallel
from repro.core.collectives.program import _stream_table, compile_plan
from repro.dtypes import INT64
from repro.engine import WorkerPool
from repro.errors import CollectiveError

WORKER_COUNTS = (1, 2, 4, 7)
#: EngineStats keys that measure host wall-clock or worker attribution;
#: everything else must be bit-identical across worker counts.
WALL_CLOCK_KEYS = frozenset({
    "compile_seconds", "replay_seconds", "parallel_workers",
    "parallel_waves", "parallel_requests", "parallel_fallbacks",
    "parallel_wall_seconds", "parallel_task_seconds", "worker_bands",
})


def modelled_snapshot(comm: Communicator) -> dict:
    """The session's stats with host wall-clock fields stripped."""
    return {k: v for k, v in comm.stats.snapshot().items()
            if k not in WALL_CLOCK_KEYS}


# ----------------------------------------------------------------------
# WorkerPool unit behavior
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_results_in_submission_order(self):
        pool = WorkerPool(4)
        try:
            def task(i):
                def run():
                    time.sleep(0.002 * (8 - i))  # later tasks finish first
                    return i
                return run
            assert pool.run([task(i) for i in range(8)]) == list(range(8))
        finally:
            pool.shutdown()

    def test_one_worker_is_inline(self):
        pool = WorkerPool(1)
        ident = []
        pool.run([lambda: ident.append(threading.get_ident())])
        assert ident == [threading.get_ident()]
        assert not pool.in_worker

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match=">= 1"):
            WorkerPool(0)

    def test_per_thread_scratch_is_private(self):
        pool = WorkerPool(3)
        barrier = threading.Barrier(3)
        try:
            def task():
                barrier.wait(timeout=10)  # all three threads live at once
                first = pool.scratch()
                return id(first), id(pool.scratch())
            results = pool.run([task, task, task])
            ids = {first for first, _ in results}
            assert len(ids) == 3, "two workers shared a scratch pool"
            for first, again in results:
                assert first == again, "scratch not sticky per thread"
        finally:
            pool.shutdown()

    def test_nested_run_executes_inline(self):
        # A wave member that band-parallelizes its own replay must not
        # wait on the bounded executor it is occupying: saturate every
        # worker with tasks that each nest another run().
        pool = WorkerPool(2)
        try:
            def outer(i):
                def run():
                    inner = pool.run([lambda: (i, 0), lambda: (i, 1)])
                    assert pool.in_worker
                    return inner
                return run
            results = pool.run([outer(0), outer(1), outer(2)])
            assert results == [[(i, 0), (i, 1)] for i in range(3)]
        finally:
            pool.shutdown()

    def test_first_submitted_exception_wins(self):
        pool = WorkerPool(4)
        finished = []
        try:
            def ok(i):
                def run():
                    time.sleep(0.01)
                    finished.append(i)
                return run

            def boom():
                raise RuntimeError("band 0 failed")

            with pytest.raises(RuntimeError, match="band 0 failed"):
                pool.run([boom, ok(1), ok(2), ok(3)])
            # Every task settled before the raise: no abandoned writes.
            assert sorted(finished) == [1, 2, 3]
        finally:
            pool.shutdown()

    def test_band_counts_attribute_callers(self):
        pool = WorkerPool(2)
        try:
            pool.count_bands(3)  # main thread
            pool.run([lambda: pool.count_bands(1),
                      lambda: pool.count_bands(1),
                      lambda: pool.count_bands(1)])
            counts = pool.band_counts()
            assert counts["inline"] == 3
            assert sum(counts.values()) == 6
            assert all(label.startswith(("worker-", "inline"))
                       for label in counts)
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(2)
        pool.run([lambda: 1, lambda: 2])
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.run([lambda: 1, lambda: 2])


class TestSessionConfigValidation:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, "4"])
    def test_rejects_invalid_worker_counts(self, bad):
        with pytest.raises(CollectiveError, match="parallel_workers"):
            SessionConfig(parallel_workers=bad)

    def test_default_is_serial(self):
        assert SessionConfig().parallel_workers == 1
        comm = Communicator(make_manager((4, 8)), SessionConfig())
        assert comm.parallel_workers == 1
        assert "workers" not in comm.describe()

    def test_describe_names_workers(self):
        comm = Communicator(make_manager((4, 8)),
                            SessionConfig(parallel_workers=4))
        assert "4 workers" in comm.describe()
        assert comm.parallel_workers == 4
        comm.close()


# ----------------------------------------------------------------------
# Bit-parity: every primitive, every worker count, both backends,
# streamed and untiled.  run_case asserts bit-exactness against the
# repro.core.reference oracle internally.
# ----------------------------------------------------------------------
class TestBitParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS,
                             ids=lambda w: f"w{w}")
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    @pytest.mark.parametrize("tile", [None, 257],
                             ids=["untiled", "streamed"])
    def test_all_primitives_match_oracle(self, backend, tile, workers):
        rng = np.random.default_rng(7)
        for primitive in PRIMITIVES:
            result = run_case(rng, primitive, (4, 8), INT64, 2, FULL,
                              backend=backend, execution="compiled",
                              tile=tile, workers=workers)
            if tile is not None:
                assert result.execution == "streamed"

    @pytest.mark.parametrize("workers", (2, 4, 7), ids=lambda w: f"w{w}")
    def test_ledger_and_tiles_invariant(self, workers):
        # The priced run: identical CommResult economics at every
        # worker count -- ledger totals compare with == (bit-exact
        # float), tiles and peak scratch shape, cache hit flags.
        def economics(n):
            rng = np.random.default_rng(21)
            results = [run_case(rng, primitive, (4, 8), INT64, 2, FULL,
                                backend="vectorized",
                                execution="compiled", tile=129, workers=n)
                       for primitive in PRIMITIVES]
            return [(r.ledger.total, r.tiles, r.cached, r.execution)
                    for r in results]
        assert economics(workers) == economics(1)


# ----------------------------------------------------------------------
# Wave parallelism: hazard-independent batch members run concurrently
# ----------------------------------------------------------------------
def _disjoint_batch(n=3, size=256):
    """n alltoalls over disjoint MRAM regions: one n-wide wave."""
    span = 2 * size
    return [CommRequest("alltoall", "10", size, src_offset=i * span,
                        dst_offset=i * span + size, data_type="int64")
            for i in range(n)]


def _seed_batch_inputs(manager, requests, seed=3):
    rng = np.random.default_rng(seed)
    for req in requests:
        groups = groups_of(manager, "10")
        elems = req.total_data_size // 8
        fill_group_inputs(manager.system, groups, req.src_offset,
                          elems, INT64, rng)


def _mram_image(manager):
    return [bytes(manager.system.memory(pe).read(0, 1 << 16))
            for pe in manager.all_pes]


class TestWaveParallelism:
    def _submit(self, workers, tile=None, injector=None):
        # Reliability (implied by an injector) interprets steps, so
        # those sessions use the default "auto" execution mode.
        execution = "auto" if injector is not None else "compiled"
        manager = make_manager((8, 4))
        comm = Communicator(manager, SessionConfig(
            parallel_workers=workers, execution=execution,
            stream_tile_bytes=tile, fault_injector=injector))
        requests = _disjoint_batch()
        _seed_batch_inputs(manager, requests)
        batch = comm.submit(requests)
        results = [f.result() for f in batch.futures]
        return manager, comm, batch, results

    @pytest.mark.parametrize("tile", [None, 129],
                             ids=["untiled", "streamed"])
    def test_parallel_wave_bit_identical_to_serial(self, tile):
        serial = self._submit(1, tile=tile)
        pooled = self._submit(4, tile=tile)
        try:
            assert _mram_image(pooled[0]) == _mram_image(serial[0])
            for a, b in zip(pooled[3], serial[3]):
                assert a.ledger.total == b.ledger.total  # bit-exact
                assert a.tiles == b.tiles
            assert pooled[2].seconds == serial[2].seconds
            assert modelled_snapshot(pooled[1]) \
                == modelled_snapshot(serial[1])
        finally:
            pooled[1].close()

    def test_parallel_wave_counters(self):
        _, comm, _, _ = self._submit(4)
        try:
            assert comm.stats.parallel_waves == 1
            assert comm.stats.parallel_requests == 3
            assert comm.stats.parallel_fallbacks == 0
            assert comm.stats.parallel_wall_seconds > 0
            assert comm.stats.parallel_task_seconds > 0
        finally:
            comm.close()

    def test_injector_forces_serial_fallback(self):
        # The injector's RNG is stateful: pooled sessions must fall
        # back to serial wave execution, counted, still bit-exact.
        injector = FaultInjector(seed=9)  # zero rates: no faults drawn
        manager, comm, _, results = self._submit(4, injector=injector)
        try:
            assert comm.stats.parallel_waves == 0
            assert comm.stats.parallel_fallbacks == 1
            baseline = self._submit(1)
            assert _mram_image(manager) == _mram_image(baseline[0])
            assert all(r.attempts == 1 for r in results)
        finally:
            comm.close()

    def test_reliability_policy_forces_serial_fallback(self):
        manager = make_manager((8, 4))
        comm = Communicator(manager, SessionConfig(
            parallel_workers=4, reliability=RELIABLE))
        try:
            requests = _disjoint_batch()
            _seed_batch_inputs(manager, requests)
            comm.submit(requests)
            assert comm.stats.parallel_waves == 0
            assert comm.stats.parallel_fallbacks == 1
        finally:
            comm.close()

    def test_single_member_waves_stay_serial(self):
        # Two conflicting requests (same buffers) -> two 1-wide waves:
        # nothing to parallelize, no fallback counted.
        manager = make_manager((8, 4))
        comm = Communicator(manager,
                            SessionConfig(parallel_workers=4))
        try:
            req = CommRequest("alltoall", "10", 256, src_offset=0,
                              dst_offset=256, data_type="int64")
            _seed_batch_inputs(manager, [req])
            comm.submit([req, req])
            assert comm.stats.parallel_waves == 0
            assert comm.stats.parallel_fallbacks == 0
        finally:
            comm.close()

    def test_close_degrades_to_serial(self):
        manager, comm, _, _ = self._submit(4)
        comm.close()
        requests = _disjoint_batch()
        batch = comm.submit(requests)  # runs serially, still correct
        assert all(f.done() for f in batch.futures)


# ----------------------------------------------------------------------
# Determinism: 20 same-seed runs, bit-identical MRAM
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_twenty_runs_bit_identical(self):
        def one_run():
            manager = make_manager((8, 4))
            comm = Communicator(manager, SessionConfig(
                parallel_workers=4, backend="vectorized",
                execution="compiled", stream_tile_bytes=129))
            requests = _disjoint_batch()
            _seed_batch_inputs(manager, requests)
            batch = comm.submit(requests)
            ledgers = [f.result().ledger.total for f in batch.futures]
            image = _mram_image(manager)
            comm.close()
            return ledgers, image

        first = one_run()
        for _ in range(19):
            assert one_run() == first


# ----------------------------------------------------------------------
# Satellite fix: stream-table concurrent first touch
# ----------------------------------------------------------------------
class TestStreamTableFirstTouch:
    def _streamed_op(self):
        manager = make_manager((4, 8))
        manager.system.set_backend("vectorized")
        comm = Communicator(manager, SessionConfig(
            backend="vectorized", execution="compiled"))
        rng = np.random.default_rng(1)
        groups = groups_of(manager, "10")
        fill_group_inputs(manager.system, groups, 0, 32, INT64, rng)
        result = comm.alltoall("10", 256, src_offset=0, dst_offset=256,
                               data_type=INT64)
        program = compile_plan(result.plan, manager.system)
        op = next(op for op in program.ops
                  if getattr(op, "_stream_cache", 1) is None)
        return manager.system, op

    def test_concurrent_first_touch_builds_once(self):
        system, op = self._streamed_op()
        builds = []
        inner = system.stream_table

        def counting(*args, **kwargs):
            builds.append(threading.get_ident())
            time.sleep(0.005)  # widen the race window
            return inner(*args, **kwargs)

        system.stream_table = counting
        try:
            nthreads = 8
            barrier = threading.Barrier(nthreads)
            tables = [None] * nthreads
            errors = []

            def touch(i):
                try:
                    barrier.wait(timeout=10)
                    tables[i] = _stream_table(op, system)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=touch, args=(i,))
                       for i in range(nthreads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            assert len(builds) == 1, \
                f"table built {len(builds)} times under concurrent touch"
            first = tables[0]
            assert first is not None
            for table in tables[1:]:
                # Shared read-only: the same object, not a rebuild.
                assert table[0] is first[0]
                assert not table[0].flags.writeable
        finally:
            del system.stream_table

    def test_arena_growth_invalidates_cache(self):
        system, op = self._streamed_op()
        first = _stream_table(op, system)
        assert _stream_table(op, system)[0] is first[0]  # steady state
        # Simulate what a reallocation does to the cache token: bump
        # the arena version (growth itself may be absorbed by the
        # arena's geometric headroom without reallocating).
        system._ensure_arena().version += 1
        rebuilt = _stream_table(op, system)
        assert rebuilt[0] is not first[0]
        assert _stream_table(op, system)[0] is rebuilt[0]


class TestArenaConcurrentTouch:
    def test_disjoint_touches_race_free(self):
        manager = make_manager((8, 4))
        system = manager.system
        system.set_backend("vectorized")
        pes = list(manager.all_pes)
        for pe in pes:
            system.memory(pe).write(
                0, np.full(64, pe % 251, dtype=np.uint8))
        nthreads = 8
        chunks = [pes[i::nthreads] for i in range(nthreads)]
        barrier = threading.Barrier(nthreads)
        errors = []

        def touch(chunk):
            try:
                barrier.wait(timeout=10)
                for _ in range(50):
                    system.materialize(chunk)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=touch, args=(c,))
                   for c in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        for pe in pes:
            assert bytes(system.memory(pe).read(0, 64)) \
                == bytes([pe % 251] * 64)


# ----------------------------------------------------------------------
# Serving under parallel replay: multi-tenant stress
# ----------------------------------------------------------------------
class TestServingParallel:
    TENANTS = 8

    def _load(self, workers, seed=5):
        import asyncio
        from repro.serving import CollectiveServer, LoadGenerator, TenantLoad

        mixes = ("dlrm_burst", "gnn_epoch", "bfs_frontier")

        async def scenario():
            manager = make_manager((8, 4))
            server = CollectiveServer(
                manager,
                SessionConfig(functional=False, parallel_workers=workers),
                max_queue_depth=512, batch_limit=16)
            loads = [TenantLoad(f"tenant-{i}", mixes[i % len(mixes)])
                     for i in range(self.TENANTS)]
            gen = LoadGenerator(server, loads, dims="10", seed=seed)
            report = await gen.run(rounds=3, lockstep=False)
            return manager, server, report

        return asyncio.run(scenario())

    def test_eight_tenants_no_drift_vs_serial(self):
        # The open-loop shape keeps every tenant backlogged, so batches
        # stay wide and the hazard scheduler forms multi-member waves
        # the pool executes concurrently.  Everything modelled must be
        # bit-identical to the serial server: the full load report
        # (latencies and goodput are priced, not measured), per-tenant
        # outcomes, and the engine's non-wall-clock statistics.
        manager_s, server_s, report_s = self._load(1)
        manager_p, server_p, report_p = self._load(4)
        try:
            assert server_p.parallel_workers == 4
            assert report_p == report_s
            assert modelled_snapshot(server_p.comm) \
                == modelled_snapshot(server_s.comm)
            assert "4 workers" in server_p.describe()
        finally:
            server_p.comm.close()

    def test_pooled_server_engages_parallel_waves(self):
        _, server, report = self._load(4)
        try:
            stats = server.comm.stats
            assert stats.parallel_waves > 0
            assert stats.parallel_fallbacks == 0
            assert all(t["shed"] == 0 and t["rejected"] == 0
                       for t in report["tenants"].values())
        finally:
            server.comm.close()


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestParallelObservability:
    def test_render_serial_session(self):
        comm = Communicator(make_manager((4, 8)), SessionConfig())
        assert render_parallel(comm.stats) \
            == "Parallel replay(serial session)"

    def test_render_and_snapshot_after_parallel_run(self):
        manager = make_manager((8, 4))
        comm = Communicator(manager, SessionConfig(
            parallel_workers=4, execution="compiled",
            stream_tile_bytes=129))
        try:
            requests = _disjoint_batch()
            _seed_batch_inputs(manager, requests)
            comm.submit(requests)
            # A solo streamed call band-parallelizes across the pool,
            # so its bands get per-worker attribution (wave members
            # replay their bands inline on the wave's worker).
            comm.alltoall("10", 256, src_offset=0, dst_offset=256,
                          data_type=INT64)
            text = render_parallel(comm.stats)
            assert "Parallel replay(4 workers)" in text
            assert "waves     1 parallel (3 requests)" in text
            snap = comm.stats.snapshot()
            assert snap["parallel_workers"] == 4
            assert snap["parallel_waves"] == 1
            assert snap["parallel_requests"] == 3
            assert sum(snap["worker_bands"].values()) > 0
            report = comm.stats.report()
            assert "parallel replay:" in report
        finally:
            comm.close()

    def test_reset_preserves_worker_count(self):
        comm = Communicator(make_manager((4, 8)),
                            SessionConfig(parallel_workers=4))
        try:
            comm.reset_stats()
            assert comm.stats.parallel_workers == 4
        finally:
            comm.close()
