"""Scenario tests mirroring the paper's illustrative figures.

These go beyond end-to-end correctness: they freeze the *intermediate*
states of the optimized dataflow and check them against what Figures 7,
8 and 9 draw -- e.g. that after PE-assisted reordering, slot ``s`` of
group rank ``a`` really holds the chunk destined for rank
``(s + a) mod N``, which is the invariant that makes the host's lane
rotation work.
"""

import numpy as np
import pytest

from repro import FULL, HypercubeManager, pidcomm_alltoall
from repro.core import reference as ref
from repro.core.collectives.plan import ExecContext
from repro.core.collectives.steps import (
    PeReorderStep,
    RotateExchangeStep,
    slot_permutation,
)
from repro.core.groups import slice_groups
from repro.dtypes import INT64
from repro.hw.system import DimmSystem


def tagged_chunk(src_rank: int, dst_rank: int) -> np.ndarray:
    """One 8-byte chunk tagged with its source and destination."""
    return np.array([src_rank * 100 + dst_rank], dtype=np.int64)


class TestFigure7Dataflow:
    """The AlltoAll pipeline of Figure 7, stage by stage."""

    def _setup(self, n=4):
        # One entangled group of 4 PEs (the figure's toy configuration).
        system = DimmSystem.small(mram_bytes=1 << 14)
        manager = HypercubeManager(system, shape=(4, 8))
        groups = [g for g in slice_groups(manager, "10")][:1]
        group = groups[0]
        src = system.alloc(n * 8)
        for a, pe in enumerate(group.pe_ids):
            data = np.concatenate([tagged_chunk(a, d) for d in range(n)])
            system.write_elements(pe, src, data, INT64)
        return system, manager, group, src

    def test_stage_a_rotates_chunks_into_lane_alignment(self):
        """Figure 7(b) step 1: after the PE kernel, slot s of rank a
        holds the chunk destined for rank (s + a) mod N."""
        system, manager, group, src = self._setup()
        n = group.size
        step = PeReorderStep([group], "rotate_left_rank", src, src, 8, n)
        step.apply(ExecContext(system=system))
        for a, pe in enumerate(group.pe_ids):
            values = system.read_elements(pe, src, n, INT64)
            for s in range(n):
                expect = tagged_chunk(a, (s + a) % n)[0]
                assert values[s] == expect, (a, s)

    def test_exchange_routes_every_chunk_to_its_destination(self):
        """After the lane rotation pass, every chunk sits on its
        destination PE (in permuted slot order)."""
        system, manager, group, src = self._setup()
        n = group.size
        ctx = ExecContext(system=system)
        PeReorderStep([group], "rotate_left_rank", src, src, 8, n).apply(ctx)
        RotateExchangeStep([group], src, 8, n, "crossdomain").apply(ctx)
        for q, pe in enumerate(group.pe_ids):
            values = system.read_elements(pe, src, n, INT64)
            # All chunks on PE q must be destined for q ...
            assert all(v % 100 == q for v in values), values
            # ... one from each source.
            assert sorted(v // 100 for v in values) == list(range(n))

    def test_stage_b_restores_source_order(self):
        """The final reflection permutation yields AlltoAll semantics."""
        system, manager, group, src = self._setup()
        n = group.size
        ctx = ExecContext(system=system)
        PeReorderStep([group], "rotate_left_rank", src, src, 8, n).apply(ctx)
        RotateExchangeStep([group], src, 8, n, "crossdomain").apply(ctx)
        PeReorderStep([group], "reflect_rank", src, src, 8, n).apply(ctx)
        for q, pe in enumerate(group.pe_ids):
            values = system.read_elements(pe, src, n, INT64)
            for p in range(n):
                assert values[p] == tagged_chunk(p, q)[0], (q, p)


class TestFigure9aMultiEntangledGroup:
    """AlltoAll among PEs spanning two entangled groups (Figure 9a)."""

    def test_group_of_eight_spans_two_egs_and_is_correct(self):
        system = DimmSystem.small(mram_bytes=1 << 14)  # 4-chip EGs
        manager = HypercubeManager(system, shape=(8, 4))
        groups = slice_groups(manager, "10")
        group = groups[0]
        geom = system.geometry
        egs = {geom.eg_of_pe(pe) for pe in group.pe_ids}
        assert len(egs) == 2  # the scenario of Figure 9(a)

        n = group.size
        total = n * 8
        src = system.alloc(total)
        dst = system.alloc(total)
        inputs = {}
        rng = np.random.default_rng(0)
        for g in groups:
            vecs = [rng.integers(0, 1000, n) for _ in g.pe_ids]
            for pe, v in zip(g.pe_ids, vecs):
                system.write_elements(pe, src, v, INT64)
            inputs[g.instance] = vecs
        pidcomm_alltoall(manager, "10", total, src, dst, INT64, config=FULL)
        for g in groups:
            expect = ref.alltoall(inputs[g.instance])
            for pe, want in zip(g.pe_ids, expect):
                np.testing.assert_array_equal(
                    system.read_elements(pe, dst, n, INT64), want)

    def test_cross_eg_rotation_is_register_redirection(self):
        """Rotating 8 lanes of two 4-lane EGs by 4 maps each EG's
        register onto the other unmodified (the red dotted box of
        Figure 9b's description)."""
        from repro.hw.host import SimdCounter, rotate_lanes_registerwise
        rng = np.random.default_rng(1)
        row = rng.integers(0, 256, (8, 8), dtype=np.uint8)
        counter = SimdCounter()
        out = rotate_lanes_registerwise(row, 4, counter)
        np.testing.assert_array_equal(out[4:], row[:4])
        np.testing.assert_array_equal(out[:4], row[4:])


class TestFigure9bPackedInstances:
    """Several small instances packed across entangled groups."""

    def test_four_instances_pack_into_full_bursts(self):
        # y-groups of size 4 on a (4, 4, 2) cube: each group takes one
        # lane of four different EGs, but the four x-instances pack the
        # EGs full, so the union wastes no lanes.
        system = DimmSystem.small(mram_bytes=1 << 14)
        manager = HypercubeManager(system, shape=(4, 4, 2))
        assert manager.entangled_group_alignment([1]) == 1.0

    def test_packed_instances_compute_independently(self):
        system = DimmSystem.small(mram_bytes=1 << 14)
        manager = HypercubeManager(system, shape=(4, 4, 2))
        groups = slice_groups(manager, "010")
        n = groups[0].size
        total = n * 8
        src = system.alloc(total)
        dst = system.alloc(total)
        # Tag every element with its instance so cross-talk would show.
        inputs = {}
        for g in groups:
            vecs = [np.full(n, 1000 * g.instance + rank, dtype=np.int64)
                    for rank in range(n)]
            for pe, v in zip(g.pe_ids, vecs):
                system.write_elements(pe, src, v, INT64)
            inputs[g.instance] = vecs
        pidcomm_alltoall(manager, "010", total, src, dst, INT64)
        for g in groups:
            expect = ref.alltoall(inputs[g.instance])
            for pe, want in zip(g.pe_ids, expect):
                got = system.read_elements(pe, dst, n, INT64)
                np.testing.assert_array_equal(got, want)
                # No value leaked from another instance.
                assert all(v // 1000 == g.instance for v in got)


class TestSlotPermutationAlgebra:
    """The algebraic identities the three-stage decomposition rests on."""

    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_decomposition_equals_global_alltoall(self, n):
        """stage_B . rotate_lanes . stage_A == transpose (AlltoAll)."""
        data = np.arange(n * n).reshape(n, n)  # [source, chunk]
        staged = np.empty_like(data)
        for a in range(n):
            staged[a] = data[a][slot_permutation("rotate_left_rank", a, n)]
        exchanged = np.empty_like(data)
        for s in range(n):
            exchanged[:, s] = np.roll(staged[:, s], s)
        final = np.empty_like(data)
        for q in range(n):
            final[q] = exchanged[q][slot_permutation("reflect_rank", q, n)]
        np.testing.assert_array_equal(final, data.T)


class TestFigure11DlrmStructure:
    """The DLRM communication structure of Figure 11: which PEs talk."""

    def _manager(self):
        system = DimmSystem.small(mram_bytes=1 << 14)
        return HypercubeManager(system, shape=(4, 2, 2, ))

    def test_rs_partners_share_column_and_table(self):
        """ReduceScatter along y links PEs differing only in the row
        shard (same embedding columns, same tables)."""
        manager = self._manager()
        for group in slice_groups(manager, "010"):
            coords = [manager.coords_of_pe(pe) for pe in group.pe_ids]
            assert len({(c[0], c[2]) for c in coords}) == 1
            assert sorted(c[1] for c in coords) == [0, 1]

    def test_aa_partners_span_the_xz_plane(self):
        """The final AlltoAll links every (column, table) shard pair of
        one row shard -- the A/C/F/H example of Figure 11."""
        manager = self._manager()
        groups = slice_groups(manager, "101")
        assert all(g.size == 8 for g in groups)
        for group in groups:
            coords = [manager.coords_of_pe(pe) for pe in group.pe_ids]
            assert len({c[1] for c in coords}) == 1       # same y
            assert len({(c[0], c[2]) for c in coords}) == 8  # all xz


class TestFullMachineFunctional:
    """Stress: a functional collective across all 1024 paper-scale PEs."""

    def test_allreduce_on_every_pe(self):
        system = DimmSystem.paper_testbed(mram_bytes=1 << 12)
        manager = HypercubeManager(system, shape=(32, 32))
        elems = 32  # divisible into 32 chunks of one int64
        src = system.alloc(elems * 8)
        dst = system.alloc(elems * 8)
        for pe in manager.all_pes:
            system.write_elements(
                pe, src, np.full(elems, pe % 7, dtype=np.int64), INT64)
        from repro import pidcomm_allreduce
        from repro.dtypes import SUM
        pidcomm_allreduce(manager, "10", elems * 8, src, dst, INT64, SUM)
        assert system.touched_pes == 1024
        # Spot-check one group against the reference.
        group = slice_groups(manager, "10")[5]
        expect = sum(pe % 7 for pe in group.pe_ids)
        for pe in group.pe_ids:
            got = system.read_elements(pe, dst, elems, INT64)
            assert (got == expect).all()
