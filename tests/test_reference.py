"""Unit tests for the golden collective semantics."""

import numpy as np
import pytest

from repro.core import reference as ref
from repro.dtypes import MAX, MIN, SUM
from repro.errors import CollectiveError


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestAlltoAll:
    def test_four_nodes(self):
        inputs = [np.arange(4) + 10 * i for i in range(4)]
        out = ref.alltoall(inputs)
        # out[i][j] = inputs[j][i]
        for i in range(4):
            assert out[i].tolist() == [inputs[j][i] for j in range(4)]

    def test_transpose_identity(self, rng):
        inputs = [rng.integers(0, 100, 12) for _ in range(4)]
        twice = ref.alltoall(ref.alltoall(inputs))
        for a, b in zip(twice, inputs):
            assert np.array_equal(a, b)

    def test_indivisible_rejected(self):
        with pytest.raises(CollectiveError):
            ref.alltoall([np.arange(5), np.arange(5)])


class TestAllGather:
    def test_concatenation(self):
        inputs = [np.array([i, i]) for i in range(3)]
        out = ref.allgather(inputs)
        assert all(o.tolist() == [0, 0, 1, 1, 2, 2] for o in out)


class TestReduceScatter:
    def test_sum(self):
        inputs = [np.arange(6, dtype=np.int64) for _ in range(3)]
        out = ref.reduce_scatter(inputs, SUM)
        assert out[0].tolist() == [0, 3]
        assert out[2].tolist() == [12, 15]

    def test_min_max(self, rng):
        inputs = [rng.integers(-100, 100, 8) for _ in range(4)]
        mn = ref.reduce_scatter(inputs, MIN)
        mx = ref.reduce_scatter(inputs, MAX)
        stacked = np.stack(inputs).reshape(4, 4, 2)
        for i in range(4):
            assert np.array_equal(mn[i], stacked[:, i].min(axis=0))
            assert np.array_equal(mx[i], stacked[:, i].max(axis=0))


class TestAllReduce:
    def test_sum(self, rng):
        inputs = [rng.integers(0, 10, 5) for _ in range(6)]
        out = ref.allreduce(inputs, SUM)
        expect = np.stack(inputs).sum(axis=0)
        assert all(np.array_equal(o, expect) for o in out)

    def test_rs_plus_ag_equals_ar(self, rng):
        inputs = [rng.integers(0, 10, 8) for _ in range(4)]
        rs = ref.reduce_scatter(inputs, SUM)
        ag = ref.allgather(rs)
        ar = ref.allreduce(inputs, SUM)
        for a, b in zip(ag, ar):
            assert np.array_equal(a, b)


class TestRooted:
    def test_scatter_gather_roundtrip(self, rng):
        root = rng.integers(0, 100, 12)
        chunks = ref.scatter(root, 4)
        assert np.array_equal(ref.gather(chunks), root)

    def test_scatter_indivisible(self):
        with pytest.raises(CollectiveError):
            ref.scatter(np.arange(10), 4)

    def test_reduce(self, rng):
        inputs = [rng.integers(0, 10, 6) for _ in range(5)]
        assert np.array_equal(ref.reduce(inputs, SUM),
                              np.stack(inputs).sum(axis=0))

    def test_broadcast(self):
        out = ref.broadcast(np.arange(3), 4)
        assert len(out) == 4
        assert all(o.tolist() == [0, 1, 2] for o in out)
        # Copies, not aliases.
        out[0][0] = 99
        assert out[1][0] == 0


class TestValidation:
    def test_mismatched_shapes(self):
        with pytest.raises(CollectiveError, match="equal-shape"):
            ref.allgather([np.arange(3), np.arange(4)])

    def test_empty_inputs(self):
        with pytest.raises(CollectiveError):
            ref.alltoall([])
        with pytest.raises(CollectiveError):
            ref.broadcast(np.arange(3), 0)
