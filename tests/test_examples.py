"""Smoke tests: every shipped example runs and self-validates.

The examples print their own correctness checks ("matches golden
model: True"); these tests run them in-process and assert those checks
passed, keeping deliverable scripts from rotting.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_app_histogram.py",
    "multihost_scaling.py",
    "whatif_hardware.py",
]
SLOW_EXAMPLES = [
    "gnn_training.py",
    "graph_analytics.py",
    "dlrm_inference.py",
]


def _run(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), path
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_examples_run(name, capsys):
    out = _run(name, capsys)
    assert out.strip()
    assert "False" not in out  # all printed self-checks must be True


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_examples_run(name, capsys):
    out = _run(name, capsys)
    assert "False" not in out


def test_every_example_is_covered():
    listed = set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == listed, on_disk ^ listed
