"""Property-based tests on the cost model and plan pricing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.collectives import (
    ABLATION_LADDER,
    FULL,
    plan_allreduce,
    plan_alltoall,
)
from repro.core.hypercube import HypercubeManager
from repro.dtypes import INT64, SUM
from repro.hw.geometry import DimmGeometry
from repro.hw.system import DimmSystem
from repro.hw.timing import CATEGORIES, CostLedger, MachineParams

sizes = st.integers(1, 256).map(lambda k: k * 8 * 32)  # group-divisible
configs = st.sampled_from(ABLATION_LADDER)


@pytest.fixture(scope="module")
def testbed():
    return DimmSystem.paper_testbed()


class TestPlanPricingProperties:
    @given(sizes, configs)
    @settings(max_examples=30, deadline=None)
    def test_estimates_are_positive_and_finite(self, size, config):
        system = DimmSystem.paper_testbed()
        manager = HypercubeManager(system, shape=(32, 32))
        ledger = plan_alltoall(manager, "10", size, 0, 0, INT64,
                               config).estimate(system)
        assert 0 < ledger.total < float("inf")
        assert all(v >= 0 for v in ledger.seconds.values())

    @given(st.integers(1, 64), configs)
    @settings(max_examples=25, deadline=None)
    def test_estimate_monotone_in_payload(self, k, config):
        system = DimmSystem.paper_testbed()
        manager = HypercubeManager(system, shape=(32, 32))
        small = plan_alltoall(manager, "10", k * 256, 0, 0, INT64,
                              config).estimate(system).total
        large = plan_alltoall(manager, "10", 2 * k * 256, 0, 0, INT64,
                              config).estimate(system).total
        assert large >= small

    @given(st.integers(1, 256).map(lambda k: k * 32 * 1024))
    @settings(max_examples=20, deadline=None)
    def test_full_config_beats_baseline_past_crossover(self, size):
        """Above ~32 KB per PE the per-byte savings dominate the extra
        kernel launches; below, the baseline's single launch can win
        (the Figure 18 small-payload regime, asserted separately)."""
        system = DimmSystem.paper_testbed()
        manager = HypercubeManager(system, shape=(32, 32))
        times = [plan_allreduce(manager, "10", size, 0, 0, INT64, SUM,
                                cfg).estimate(system).total
                 for cfg in ABLATION_LADDER]
        assert times[-1] <= times[0]

    def test_tiny_payloads_favor_fewer_launches(self):
        """The flip side of the crossover: at 256 B the conventional
        flow's single invocation beats PID-Comm's three launches."""
        system = DimmSystem.paper_testbed()
        manager = HypercubeManager(system, shape=(32, 32))
        times = [plan_allreduce(manager, "10", 256, 0, 0, INT64, SUM,
                                cfg).estimate(system).total
                 for cfg in ABLATION_LADDER]
        assert times[-1] > times[0]

    @given(st.sampled_from([(1024,), (32, 32), (4, 16, 16), (8, 8, 16)]))
    @settings(max_examples=8, deadline=None)
    def test_alltoall_cost_shape_invariant_for_full_machine(self, shape):
        """AlltoAll over ALL dims moves the same data regardless of how
        the cube is factored; its price must not depend on the shape."""
        system = DimmSystem.paper_testbed()
        manager = HypercubeManager(system, shape=shape)
        dims = "1" * len(shape)
        ledger = plan_alltoall(manager, dims, 1 << 18, 0, 0, INT64,
                               FULL).estimate(system)
        reference = plan_alltoall(
            HypercubeManager(system, shape=(1024,)), "1", 1 << 18, 0, 0,
            INT64, FULL).estimate(system)
        assert ledger.total == pytest.approx(reference.total)


class TestLedgerProperties:
    amounts = st.lists(
        st.tuples(st.sampled_from(CATEGORIES),
                  st.floats(0, 100, allow_nan=False)),
        min_size=0, max_size=20)

    @given(amounts)
    def test_total_equals_sum(self, entries):
        ledger = CostLedger()
        for category, seconds in entries:
            ledger.add(category, seconds)
        assert ledger.total == pytest.approx(
            sum(s for _, s in entries))

    @given(amounts, amounts)
    def test_merge_commutes(self, a_entries, b_entries):
        a1, b1 = CostLedger(), CostLedger()
        for c, s in a_entries:
            a1.add(c, s)
        for c, s in b_entries:
            b1.add(c, s)
        ab = a1 + b1
        ba = b1 + a1
        assert ab.total == pytest.approx(ba.total)
        for category in CATEGORIES:
            assert ab.get(category) == pytest.approx(ba.get(category))

    @given(amounts, st.floats(0, 10, allow_nan=False))
    def test_scaling_is_linear(self, entries, factor):
        ledger = CostLedger()
        for c, s in entries:
            ledger.add(c, s)
        assert ledger.scaled(factor).total == pytest.approx(
            factor * ledger.total)


class TestUtilizationProperties:
    pe_sets = st.lists(st.integers(0, 1023), min_size=1, max_size=64,
                       unique=True)

    @given(pe_sets)
    @settings(max_examples=50, deadline=None)
    def test_lane_utilization_bounds(self, pes):
        geom = DimmGeometry(4, 4, 8, 8)
        util = geom.lane_utilization(pes)
        assert 0 < util <= 1.0

    @given(pe_sets)
    @settings(max_examples=50, deadline=None)
    def test_channels_within_range(self, pes):
        geom = DimmGeometry(4, 4, 8, 8)
        assert 1 <= geom.channels_used(pes) <= 4

    @given(st.integers(0, 127))
    @settings(max_examples=30, deadline=None)
    def test_whole_entangled_group_is_fully_utilized(self, eg_id):
        geom = DimmGeometry(4, 4, 8, 8)
        eg = geom.entangled_group(eg_id)
        assert geom.lane_utilization(eg.pe_ids) == 1.0


class TestParamsProperties:
    @given(st.floats(1, 1e9, allow_nan=False))
    def test_bus_time_linear(self, nbytes):
        params = MachineParams()
        one = params.bus_time(nbytes, 1)
        assert params.bus_time(2 * nbytes, 1) == pytest.approx(2 * one)
        assert params.bus_time(nbytes, 2) == pytest.approx(one / 2)
