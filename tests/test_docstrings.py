"""Documentation hygiene: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

SKIP_MODULES = {"repro.__main__"}


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        yield name, obj


def _all_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _all_modules() if not m.__doc__]
    assert not missing, missing


def test_every_public_class_and_function_documented():
    missing = []
    for module in _all_modules():
        for name, obj in _public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for meth_name, meth in vars(obj).items():
                    if meth_name.startswith("_"):
                        continue
                    if not inspect.isfunction(meth):
                        continue
                    if not inspect.getdoc(meth):
                        missing.append(
                            f"{module.__name__}.{name}.{meth_name}")
    assert not missing, f"{len(missing)} undocumented: {missing[:20]}"
