"""Unit tests for data types and reduction operators."""

import numpy as np
import pytest

from repro.dtypes import (
    ALL_OPS,
    ALL_TYPES,
    BAND,
    BOR,
    INT8,
    INT32,
    INT64,
    FLOAT32,
    MAX,
    MIN,
    PIM_WORD_BYTES,
    SUM,
    check_op_dtype,
    dtype_by_name,
    op_by_name,
)
from repro.errors import CollectiveError


class TestDataType:
    def test_itemsize_matches_numpy(self):
        for t in ALL_TYPES:
            assert t.itemsize == np.dtype(t.name).itemsize

    def test_elems_per_word(self):
        assert INT64.elems_per_word == 1
        assert INT32.elems_per_word == 2
        assert INT8.elems_per_word == PIM_WORD_BYTES

    def test_cross_domain_reducible_only_for_bytes(self):
        reducible = {t.name for t in ALL_TYPES if t.cross_domain_reducible}
        assert reducible == {"int8", "uint8"}

    def test_lookup_by_name(self):
        assert dtype_by_name("int32") is INT32

    def test_lookup_unknown_raises(self):
        with pytest.raises(CollectiveError, match="unknown data type"):
            dtype_by_name("int128")


class TestReduceOp:
    def test_sum_identity(self):
        ident = SUM.identity(INT32)
        assert ident == 0 and ident.dtype == np.int32

    def test_min_max_identities_absorb(self):
        values = np.array([3, -7, 12], dtype=np.int32)
        assert MIN.combine(MIN.identity(INT32), values).tolist() == values.tolist()
        assert MAX.combine(MAX.identity(INT32), values).tolist() == values.tolist()

    def test_bitwise_identities(self):
        values = np.array([0b1010, 0b0110], dtype=np.int32)
        assert BOR.combine(BOR.identity(INT32), values).tolist() == values.tolist()
        assert BAND.combine(BAND.identity(INT32), values).tolist() == values.tolist()

    def test_reduce_axis(self):
        stacked = np.arange(12, dtype=np.int64).reshape(3, 4)
        assert SUM.reduce_axis(stacked).tolist() == stacked.sum(axis=0).tolist()
        assert MIN.reduce_axis(stacked).tolist() == stacked.min(axis=0).tolist()

    def test_lookup_by_name(self):
        for op in ALL_OPS:
            assert op_by_name(op.name) is op

    def test_lookup_unknown_raises(self):
        with pytest.raises(CollectiveError, match="unknown reduce op"):
            op_by_name("xor")

    def test_bitwise_on_float_rejected(self):
        with pytest.raises(CollectiveError, match="not defined for float"):
            check_op_dtype(BOR, FLOAT32)

    def test_sum_on_float_accepted(self):
        check_op_dtype(SUM, FLOAT32)  # must not raise
