"""Unit tests for the virtual hypercube and its PE mapping."""

import pytest

from repro.core.hypercube import (
    HypercubeManager,
    HypercubeShape,
    parse_dim_bitmap,
)
from repro.errors import HypercubeError
from repro.hw.system import DimmSystem


@pytest.fixture
def system():
    return DimmSystem.small()  # 32 PEs: 2ch x 1rk x 4chip x 4bank


class TestShape:
    def test_valid_shapes(self):
        assert HypercubeShape((4, 2, 4)).num_nodes == 32
        assert HypercubeShape((1024,)).num_nodes == 1024

    def test_last_dim_may_be_non_pow2(self):
        shape = HypercubeShape((8, 2, 3))
        assert shape.num_nodes == 48

    def test_non_last_dim_must_be_pow2(self):
        with pytest.raises(HypercubeError, match="power of two"):
            HypercubeShape((3, 8))

    def test_empty_and_non_positive_rejected(self):
        with pytest.raises(HypercubeError):
            HypercubeShape(())
        with pytest.raises(HypercubeError):
            HypercubeShape((0, 4))

    def test_node_index_dim0_fastest(self):
        shape = HypercubeShape((4, 2, 4))
        assert shape.node_index((1, 0, 0)) == 1
        assert shape.node_index((0, 1, 0)) == 4
        assert shape.node_index((0, 0, 1)) == 8

    def test_index_coord_roundtrip(self):
        shape = HypercubeShape((4, 2, 4))
        for i in range(shape.num_nodes):
            assert shape.node_index(shape.node_coords(i)) == i

    def test_dim_names(self):
        shape = HypercubeShape((2, 2, 2, 2))
        assert [shape.dim_name(i) for i in range(4)] == ["x", "y", "z", "u"]

    def test_str(self):
        assert str(HypercubeShape((4, 2, 4))) == "4x2x4"


class TestBitmap:
    def test_parse_selects_positions(self):
        assert parse_dim_bitmap("010", 3) == (1,)
        assert parse_dim_bitmap("101", 3) == (0, 2)

    def test_length_mismatch(self):
        with pytest.raises(HypercubeError, match="characters"):
            parse_dim_bitmap("01", 3)

    def test_bad_characters(self):
        with pytest.raises(HypercubeError, match="only '0'/'1'"):
            parse_dim_bitmap("0a1", 3)

    def test_empty_selection(self):
        with pytest.raises(HypercubeError, match="selects no dimension"):
            parse_dim_bitmap("000", 3)


class TestManager:
    def test_mapping_is_bijective(self, system):
        manager = HypercubeManager(system, shape=(4, 4, 2))
        seen = set()
        for node in range(manager.num_nodes):
            pe = manager.pe_of_node(node)
            assert manager.node_of_pe(pe) == node
            seen.add(pe)
        assert len(seen) == 32

    def test_x_dim_lands_in_entangled_group(self, system):
        # dim 0 of length 4 == chips_per_rank: each x-line is one EG.
        manager = HypercubeManager(system, shape=(4, 4, 2))
        geom = system.geometry
        for y in range(4):
            for z in range(2):
                pes = [manager.pe_of_coords((x, y, z)) for x in range(4)]
                assert len({geom.eg_of_pe(pe) for pe in pes}) == 1
                assert [geom.lane_of_pe(pe) for pe in pes] == [0, 1, 2, 3]

    def test_too_many_nodes_rejected(self, system):
        with pytest.raises(HypercubeError, match="needs"):
            HypercubeManager(system, shape=(8, 8))

    def test_base_pe_offsets_mapping(self, system):
        manager = HypercubeManager(system, shape=(4, 4), base_pe=16)
        assert manager.pe_of_node(0) == 16
        assert manager.all_pes == tuple(range(16, 32))

    def test_base_pe_must_be_eg_aligned(self, system):
        with pytest.raises(HypercubeError, match="aligned"):
            HypercubeManager(system, shape=(4, 4), base_pe=2)

    def test_coords_roundtrip(self, system):
        manager = HypercubeManager(system, shape=(4, 2, 4))
        for pe in manager.all_pes:
            assert manager.pe_of_coords(manager.coords_of_pe(pe)) == pe

    def test_alignment_is_full_for_valid_cubes(self, system):
        manager = HypercubeManager(system, shape=(4, 4, 2))
        for dims in ("100", "010", "001", "110", "011", "111"):
            assert manager.entangled_group_alignment(
                [i for i, c in enumerate(dims) if c == "1"]) == 1.0

    def test_describe_mentions_shape(self, system):
        manager = HypercubeManager(system, shape=(4, 8))
        assert "4x8" in manager.describe()
