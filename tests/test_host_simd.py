"""Tests for the register-wise host data path and its op accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.collectives import FULL, PR_IM, plan_alltoall, plan_allgather
from repro.core.hypercube import HypercubeManager
from repro.dtypes import INT64
from repro.errors import TransferError
from repro.hw.host import (
    REGISTER_BYTES,
    SimdCounter,
    domain_transfer_registerwise,
    rotate_lanes_registerwise,
    vertical_add_registerwise,
)
from repro.hw.system import DimmSystem


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestRotateRegisterwise:
    @given(st.sampled_from([2, 4, 8, 16, 32]), st.integers(0, 40),
           st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_equivalent_to_roll(self, lanes, amount, words):
        rng = np.random.default_rng(lanes * 1000 + amount)
        row = rng.integers(0, 256, (lanes, words * 8), dtype=np.uint8)
        out = rotate_lanes_registerwise(row, amount)
        assert np.array_equal(out, np.roll(row, amount, axis=0))

    def test_aligned_rotation_uses_one_source_register(self, rng):
        # 16 lanes, rotate by 8: every output register reads exactly one
        # source register (pure register redirection, Figure 9b).
        row = rng.integers(0, 256, (16, 8), dtype=np.uint8)
        counter = SimdCounter()
        rotate_lanes_registerwise(row, 8, counter)
        assert counter.shuffles == counter.stores  # 1 shuffle per output

    def test_unaligned_rotation_uses_two_source_registers(self, rng):
        row = rng.integers(0, 256, (16, 8), dtype=np.uint8)
        counter = SimdCounter()
        rotate_lanes_registerwise(row, 3, counter)
        assert counter.shuffles == 2 * counter.stores

    def test_sub_register_group_single_shuffle(self, rng):
        # A 4-lane group packs inside one register.
        row = rng.integers(0, 256, (4, 16), dtype=np.uint8)
        counter = SimdCounter()
        rotate_lanes_registerwise(row, 1, counter)
        assert counter.shuffles == counter.stores

    def test_rejects_bad_matrix(self):
        with pytest.raises(TransferError):
            rotate_lanes_registerwise(np.zeros((2, 2), dtype=np.int32), 1)


class TestDomainTransferRegisterwise:
    def test_involution(self, rng):
        row = rng.integers(0, 256, (8, 64), dtype=np.uint8)
        once = domain_transfer_registerwise(row)
        twice = domain_transfer_registerwise(once)
        assert np.array_equal(twice, row)
        assert not np.array_equal(once, row)

    def test_square_tile_is_transpose(self, rng):
        row = rng.integers(0, 256, (8, 8), dtype=np.uint8)
        out = domain_transfer_registerwise(row)
        assert np.array_equal(out, row.T)

    def test_counts_one_transpose_per_register(self, rng):
        row = rng.integers(0, 256, (8, 64), dtype=np.uint8)
        counter = SimdCounter()
        domain_transfer_registerwise(row, counter)
        assert counter.transposes == 8  # 8 lanes x 64 B = 8 registers
        assert counter.transpose_bytes == row.size

    def test_misaligned_rejected(self):
        with pytest.raises(TransferError):
            domain_transfer_registerwise(np.zeros((8, 5), dtype=np.uint8))


class TestVerticalAdd:
    def test_elementwise_and_counted(self, rng):
        a = rng.integers(0, 100, (8, 32)).astype(np.int64)
        b = rng.integers(0, 100, (8, 32)).astype(np.int64)
        counter = SimdCounter()
        merged = vertical_add_registerwise(
            np.ascontiguousarray(a).view(np.uint8),
            np.ascontiguousarray(b).view(np.uint8),
            np.dtype(np.int64), counter)
        assert np.array_equal(merged.view(np.int64), a + b)
        assert counter.adds == a.size * 8 // REGISTER_BYTES
        assert counter.add_bytes == a.size * 8

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TransferError):
            vertical_add_registerwise(
                np.zeros((2, 8), dtype=np.uint8),
                np.zeros((2, 16), dtype=np.uint8), np.dtype(np.int64))

    def test_other_ufuncs(self, rng):
        a = rng.integers(0, 100, (4, 8)).astype(np.int64)
        b = rng.integers(0, 100, (4, 8)).astype(np.int64)
        merged = vertical_add_registerwise(
            np.ascontiguousarray(a).view(np.uint8),
            np.ascontiguousarray(b).view(np.uint8),
            np.dtype(np.int64), ufunc=np.minimum)
        assert np.array_equal(merged.view(np.int64), np.minimum(a, b))


class TestExecutionOpAccounting:
    """Executing a plan counts register work matching what it charges."""

    def _run(self, plan, system):
        ctx = plan.execute(system)
        return ctx.simd

    def test_alltoall_shuffle_volume_matches_charge(self):
        system = DimmSystem.small(mram_bytes=1 << 16)
        manager = HypercubeManager(system, shape=(8, 4))
        total = 8 * 64  # 8 chunks of 64 B per PE
        src, dst = system.alloc(total), system.alloc(total)
        plan = plan_alltoall(manager, "10", total, src, dst, INT64, FULL)
        simd = self._run(plan, system)
        # The exchange shuffles every byte of the payload exactly once
        # (modulo register-size rounding and two-source shuffles).
        payload = total * manager.num_nodes
        assert payload <= simd.shuffle_bytes <= 3 * payload
        # Cross-domain modulation: no transposes at all.
        assert simd.transposes == 0

    def test_alltoall_im_counts_domain_transfers(self):
        system = DimmSystem.small(mram_bytes=1 << 16)
        manager = HypercubeManager(system, shape=(8, 4))
        total = 8 * 64
        src, dst = system.alloc(total), system.alloc(total)
        plan = plan_alltoall(manager, "10", total, src, dst, INT64, PR_IM)
        simd = self._run(plan, system)
        payload = total * manager.num_nodes
        # +IM performs the two domain transfers CM would have fused away.
        assert simd.transpose_bytes == 2 * payload

    def test_allgather_multi_instance_counts(self):
        system = DimmSystem.small(mram_bytes=1 << 16)
        manager = HypercubeManager(system, shape=(4, 8))
        chunk = 64
        src = system.alloc(chunk)
        dst = system.alloc(4 * chunk)
        plan = plan_allgather(manager, "10", chunk, src, dst, INT64, FULL)
        simd = self._run(plan, system)
        out_bytes = 4 * chunk * manager.num_nodes
        assert out_bytes <= simd.shuffle_bytes <= 3 * out_bytes
