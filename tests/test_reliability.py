"""Fault injection, retry, and graceful degradation tests.

One class per fault class (bit flip / drop / timeout / permanent rank
failure), plus the engine-level retry loop, the hypercube remap, and
the plan-cache keying that keeps degraded plans apart from healthy
ones.
"""

import numpy as np
import pytest

from .helpers import fill_group_inputs, groups_of, make_manager

from repro import (
    Communicator,
    DimmSystem,
    FAIL_FAST,
    FaultInjector,
    FaultSpec,
    HypercubeManager,
    PlanCache,
    ReliabilityPolicy,
    SessionConfig,
)
from repro.core import reference as ref
from repro.core.groups import member_pes
from repro.core.hypercube import HypercubeManager as HM
from repro.dtypes import INT64, SUM
from repro.engine.request import CommRequest
from repro.errors import (
    ChecksumError,
    FaultBudgetExceeded,
    HypercubeError,
    LaunchTimeout,
    RankFailure,
    ReliabilityError,
    TransferDropped,
)
from repro.hw.driver import DpuDriver, XFER_FROM_DPU, XFER_TO_DPU
from repro.reliability import RetryPolicy, checksum, guarded_delivery
from repro.reliability.faults import partial_prefix


@pytest.fixture
def rng():
    return np.random.default_rng(7)


# ----------------------------------------------------------------------
# Fault specification and injector mechanics
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ReliabilityError):
            FaultSpec(bit_flip_rate=1.5)
        with pytest.raises(ReliabilityError):
            FaultSpec(drop_rate=-0.1)
        FaultSpec(timeout_rate=1.0)  # always-fault is legal (tests)

    def test_transient_total(self):
        spec = FaultSpec(bit_flip_rate=0.01, drop_rate=0.02,
                         timeout_rate=0.03)
        assert spec.transient_total == pytest.approx(0.06)

    def test_spec_and_rates_mutually_exclusive(self):
        with pytest.raises(ReliabilityError):
            FaultInjector(FaultSpec(), bit_flip_rate=0.1)


class TestInjectorDeterminism:
    def test_same_seed_same_schedule(self):
        buf = np.arange(64, dtype=np.uint8)
        runs = []
        for _ in range(2):
            inj = FaultInjector(seed=42, bit_flip_rate=0.5, drop_rate=0.5)
            outs = [inj.corrupt_transfer(buf).tobytes() for _ in range(10)]
            drops = [inj.take_drop() for _ in range(10)]
            runs.append((outs, drops, dict(inj.injected)))
        assert runs[0] == runs[1]

    def test_different_seed_differs(self):
        buf = np.arange(256, dtype=np.uint8)
        a = FaultInjector(seed=1, bit_flip_rate=0.5)
        b = FaultInjector(seed=2, bit_flip_rate=0.5)
        outs_a = [a.corrupt_transfer(buf).tobytes() for _ in range(20)]
        outs_b = [b.corrupt_transfer(buf).tobytes() for _ in range(20)]
        assert outs_a != outs_b

    def test_corruption_flips_exactly_one_bit(self):
        inj = FaultInjector(seed=0, bit_flip_rate=0.999)
        buf = np.zeros(32, dtype=np.int64)
        for _ in range(50):
            out = inj.corrupt_transfer(buf)
            flipped = np.unpackbits(out.view(np.uint8)).sum()
            assert flipped in (0, 1)  # untouched or exactly one bit
        assert inj.injected["bit_flip"] > 0

    def test_partial_prefix(self):
        assert partial_prefix([1, 2, 3, 4]) == [1, 2]
        assert partial_prefix([5]) == [5]
        assert partial_prefix([]) == []


# ----------------------------------------------------------------------
# Fault class: bit flips (detected by checksums)
# ----------------------------------------------------------------------
class TestBitFlips:
    def test_checksum_detects_any_corruption(self):
        buf = np.arange(128, dtype=np.int64)
        crc = checksum(buf)
        corrupted = buf.copy()
        corrupted[13] ^= 1
        assert checksum(corrupted) != crc

    def test_guarded_delivery_raises_never_commits(self):
        inj = FaultInjector(seed=0, bit_flip_rate=0.999)
        buf = np.arange(64, dtype=np.uint8)
        raised = 0
        for _ in range(20):
            try:
                out = guarded_delivery(inj, buf)
            except ChecksumError:
                raised += 1
            else:
                # no fault fired: delivery must be byte-identical
                np.testing.assert_array_equal(out, buf)
        assert raised > 0

    def test_driver_copy_from_detects_flip(self):
        system = DimmSystem.small()
        system.memory(0).write(0, np.arange(16, dtype=np.uint8))
        driver = DpuDriver(system,
                           FaultInjector(seed=1, bit_flip_rate=0.999))
        dpus = driver.alloc_ranks(1)
        with pytest.raises(ChecksumError):
            for _ in range(50):
                driver.copy_from(dpus, 0, 0, 16)


# ----------------------------------------------------------------------
# Fault class: dropped / partial transfers
# ----------------------------------------------------------------------
class TestDrops:
    def test_push_xfer_partial_delivery(self):
        system = DimmSystem.small()
        driver = DpuDriver(system, FaultInjector(seed=0, drop_rate=1.0))
        dpus = driver.alloc_ranks(1)
        pes = dpus.pe_ids
        bufs = [np.full(8, i, dtype=np.uint8) for i in range(len(pes))]
        with pytest.raises(TransferDropped):
            driver.push_xfer(dpus, XFER_TO_DPU, 0, buffers=bufs)
        # The deterministic prefix landed; the rest never arrived.
        reached = partial_prefix(list(pes))
        for i, pe in enumerate(pes):
            got = system.memory(pe).read(0, 8)
            want = bufs[i] if pe in reached else np.zeros(8, np.uint8)
            np.testing.assert_array_equal(got, want)

    def test_from_dpu_reads_are_guarded(self):
        system = DimmSystem.small()
        driver = DpuDriver(system, FaultInjector(seed=0, drop_rate=1.0))
        dpus = driver.alloc_ranks(1)
        with pytest.raises(TransferDropped):
            driver.push_xfer(dpus, XFER_FROM_DPU, 0, nbytes=8)


# ----------------------------------------------------------------------
# Fault class: launch timeouts (and the retry/backoff machinery)
# ----------------------------------------------------------------------
class TestTimeouts:
    def test_driver_launch_times_out(self):
        system = DimmSystem.small()
        driver = DpuDriver(system, FaultInjector(seed=0, timeout_rate=1.0))
        dpus = driver.alloc_ranks(1)
        with pytest.raises(LaunchTimeout):
            for _ in range(5):
                driver.launch(dpus)

    def test_backoff_sequence_caps(self):
        policy = RetryPolicy(backoff_base_s=1e-4, backoff_factor=2.0,
                             backoff_cap_s=3e-4)
        assert policy.backoff(1) == pytest.approx(1e-4)
        assert policy.backoff(2) == pytest.approx(2e-4)
        assert policy.backoff(3) == pytest.approx(3e-4)  # capped
        assert policy.backoff(9) == pytest.approx(3e-4)
        assert policy.total_backoff(3) == pytest.approx(6e-4)

    def test_policy_validated(self):
        with pytest.raises(ReliabilityError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReliabilityError):
            RetryPolicy(backoff_factor=0.5)

    def test_engine_retries_timeouts_to_success(self, rng):
        manager = make_manager((4, 8))
        system = manager.system
        injector = FaultInjector(seed=3, timeout_rate=0.2)
        comm = Communicator(manager, SessionConfig(fault_injector=injector))
        groups = groups_of(manager, "11")
        src = system.alloc(1 << 10)
        dst = system.alloc(1 << 10)
        inputs = fill_group_inputs(system, groups, src, 128, INT64, rng)
        result = comm.allreduce("11", 1 << 10, src_offset=src,
                                dst_offset=dst)
        assert result.attempts > 1
        assert "timeout" in result.faults_seen
        assert result.ledger.seconds["retry"] > 0.0
        assert comm.stats.retries == result.attempts - 1
        assert comm.stats.backoff_seconds > 0.0
        want = ref.allreduce(inputs[0], SUM)
        for pe, expect in zip(groups[0].pe_ids, want):
            np.testing.assert_array_equal(
                system.read_elements(pe, dst, 128, INT64), expect)

    def test_attempt_cap_exhausts(self):
        manager = make_manager((4, 8))
        injector = FaultInjector(seed=0, timeout_rate=0.95)
        policy = ReliabilityPolicy(retry=RetryPolicy(max_attempts=3))
        comm = Communicator(manager, SessionConfig(reliability=policy,
                            fault_injector=injector))
        src = manager.system.alloc(256)
        with pytest.raises(FaultBudgetExceeded):
            comm.allreduce("11", 256, src_offset=src, dst_offset=src)

    def test_fault_budget_exhausts(self):
        manager = make_manager((4, 8))
        injector = FaultInjector(seed=0, timeout_rate=0.95)
        policy = ReliabilityPolicy(
            retry=RetryPolicy(max_attempts=50, fault_budget=2))
        comm = Communicator(manager, SessionConfig(reliability=policy,
                            fault_injector=injector))
        src = manager.system.alloc(256)
        with pytest.raises(FaultBudgetExceeded, match="budget"):
            comm.allreduce("11", 256, src_offset=src, dst_offset=src)


# ----------------------------------------------------------------------
# Snapshot/restore correctness for in-place primitives
# ----------------------------------------------------------------------
class TestSnapshotRestore:
    def test_inplace_reduce_scatter_retries_bit_exact(self, rng):
        # reduce_scatter permutes its *source* region in place; a retry
        # that does not rewind would reduce permuted data.  Sweep seeds
        # until a multi-attempt run occurs and require exactness.
        retried = False
        for seed in range(20):
            manager = make_manager((4, 8))
            system = manager.system
            injector = FaultInjector(seed=seed, timeout_rate=0.25)
            comm = Communicator(manager, SessionConfig(fault_injector=injector))
            groups = groups_of(manager, "11")
            n = groups[0].size
            elems = n * 2
            src = system.alloc(elems * 8)
            dst = system.alloc(elems * 8)
            inputs = fill_group_inputs(system, groups, src, elems, INT64,
                                       rng)
            result = comm.reduce_scatter("11", elems * 8, src_offset=src,
                                         dst_offset=dst)
            retried = retried or result.attempts > 1
            want = ref.reduce_scatter(inputs[0], SUM)
            for pe, expect in zip(groups[0].pe_ids, want):
                np.testing.assert_array_equal(
                    system.read_elements(pe, dst, 2, INT64), expect)
        assert retried, "no seed in range produced a retry"


class TestSnapshotElision:
    """Healthy reliable runs must not pay for rewind snapshots.

    ``_snapshot_needed`` gates the per-attempt MRAM footprint snapshot
    on the injector actually being able to trigger a retry: non-zero
    transient rates or an already-failed rank.
    """

    def _count_snapshots(self, monkeypatch, injector, check=True):
        calls = [0]
        original = Communicator._snapshot

        def counting(self, req):
            calls[0] += 1
            return original(self, req)

        monkeypatch.setattr(Communicator, "_snapshot", counting)
        manager = make_manager((4, 8))
        system = manager.system
        comm = Communicator(manager, SessionConfig(fault_injector=injector))
        groups = groups_of(manager, "11")
        n = groups[0].size
        src = system.alloc(n * 2 * 8)
        dst = system.alloc(n * 2 * 8)
        inputs = fill_group_inputs(system, groups, src, n * 2, INT64,
                                   np.random.default_rng(3))
        comm.alltoall("11", n * 2 * 8, src_offset=src, dst_offset=dst)
        if check:
            want = ref.alltoall(inputs[0])
            for pe, expect in zip(groups[0].pe_ids, want):
                np.testing.assert_array_equal(
                    system.read_elements(pe, dst, n * 2, INT64), expect)
        return calls[0]

    def test_zero_rate_injector_skips_snapshot(self, monkeypatch):
        assert self._count_snapshots(
            monkeypatch, FaultInjector(seed=1)) == 0

    def test_transient_rates_keep_snapshotting(self, monkeypatch):
        assert self._count_snapshots(
            monkeypatch,
            FaultInjector(seed=1, bit_flip_rate=0.001)) >= 1

    def test_failed_rank_keeps_snapshotting(self, monkeypatch):
        # Degraded runs remap PEs, so skip the healthy-reference check.
        injector = FaultInjector(seed=1)
        injector.fail_rank(0)
        assert self._count_snapshots(monkeypatch, injector,
                                     check=False) >= 1


# ----------------------------------------------------------------------
# Fault class: permanent rank failure -> graceful degradation
# ----------------------------------------------------------------------
class TestRankFailure:
    def test_failed_pes_covers_whole_rank(self):
        system = DimmSystem.small()
        injector = FaultInjector(seed=0)
        injector.fail_rank(1)
        dead = injector.failed_pes(system.geometry)
        per_rank = system.geometry.pes_per_rank
        assert dead == frozenset(range(per_rank, 2 * per_rank))

    def test_guard_raises_with_dead_pe_list(self):
        system = DimmSystem.small()
        injector = FaultInjector(seed=0)
        injector.fail_rank(0)
        with pytest.raises(RankFailure) as exc:
            injector.guard_pes(system.geometry, [0, 1, 31])
        assert exc.value.pe_ids == (0, 1)

    def test_without_pes_halves_widest_dimension(self):
        manager = make_manager((4, 8))
        shrunk = manager.without_pes(range(16, 32))
        assert shrunk.shape.dims == (4, 4)
        assert shrunk.all_pes == tuple(range(16))

    def test_without_pes_no_survivors(self):
        manager = make_manager((4, 8))
        with pytest.raises(HypercubeError):
            manager.without_pes(range(32))

    def test_pe_map_round_trip(self):
        system = DimmSystem.small()
        pes = tuple(range(8, 24))
        manager = HM(system, (4, 4), pe_map=pes)
        for node, pe in enumerate(pes):
            assert manager.pe_of_node(node) == pe
            assert manager.node_of_pe(pe) == node
        with pytest.raises(HypercubeError):
            manager.node_of_pe(31)

    def test_pe_map_validated(self):
        system = DimmSystem.small()
        with pytest.raises(HypercubeError):
            HM(system, (4, 4), pe_map=(0,) * 16)  # duplicates
        with pytest.raises(HypercubeError):
            HM(system, (4, 4), pe_map=tuple(range(8)))  # wrong length

    def test_engine_degrades_and_stays_correct(self, rng):
        manager = make_manager((4, 8))
        system = manager.system
        injector = FaultInjector(seed=0)
        comm = Communicator(manager, SessionConfig(fault_injector=injector))
        src = system.alloc(256)
        dst = system.alloc(256)
        values = {pe: rng.integers(0, 99, 32).astype(np.int64)
                  for pe in manager.all_pes}
        for pe, vals in values.items():
            system.write_elements(pe, src, vals, INT64)
        injector.fail_rank(1)  # PEs 16..31 go dark
        result = comm.allreduce("11", 256, src_offset=src, dst_offset=dst)
        assert result.degraded
        assert result.attempts == 2
        assert "rank_failure" in result.faults_seen
        assert comm.degraded
        assert comm.stats.degradations == 1
        assert comm.manager.shape.dims == (4, 4)
        survivors = comm.manager.all_pes
        assert survivors == tuple(range(16))
        want = ref.allreduce([values[pe] for pe in survivors], SUM)
        for pe, expect in zip(survivors, want):
            np.testing.assert_array_equal(
                system.read_elements(pe, dst, 32, INT64), expect)

    def test_fail_fast_policy_propagates(self):
        manager = make_manager((4, 8))
        injector = FaultInjector(seed=0)
        comm = Communicator(manager, SessionConfig(reliability=FAIL_FAST,
                            fault_injector=injector))
        src = manager.system.alloc(256)
        injector.fail_rank(0)
        with pytest.raises(RankFailure):
            comm.allreduce("11", 256, src_offset=src, dst_offset=src)

    def test_member_pes_matches_manager(self):
        manager = make_manager((4, 8))
        assert member_pes(manager, "11") == tuple(range(32))
        assert member_pes(manager, "10") == tuple(range(32))


# ----------------------------------------------------------------------
# Plan-cache keying: degraded plans never alias healthy ones
# ----------------------------------------------------------------------
class TestDegradedCacheKeys:
    def test_topology_signature_changes_on_remap(self):
        manager = make_manager((4, 8))
        shrunk = manager.without_pes(range(16, 32))
        assert manager.topology_signature() != shrunk.topology_signature()
        # and a same-shape cube on different PEs differs too
        other = HM(manager.system, (4, 4),
                   pe_map=tuple(range(16, 32)))
        assert shrunk.topology_signature() != other.topology_signature()

    def test_plan_keys_never_alias(self):
        manager = make_manager((4, 8))
        shrunk = manager.without_pes(range(16, 32))
        request = CommRequest("allreduce", (0, 1), 256)
        comm = Communicator(manager)
        healthy = request.normalize(manager, comm.config).plan_key
        degraded = request.normalize(shrunk, comm.config).plan_key
        assert healthy != degraded
        assert healthy.topology != degraded.topology

    def test_degradation_adds_cache_entry(self, rng):
        manager = make_manager((4, 8))
        system = manager.system
        injector = FaultInjector(seed=0)
        comm = Communicator(manager, SessionConfig(fault_injector=injector))
        src = system.alloc(256)
        for pe in manager.all_pes:
            system.write_elements(pe, src,
                                  np.arange(32, dtype=np.int64), INT64)
        comm.allreduce("11", 256, src_offset=src, dst_offset=src)
        assert len(comm.cache) == 1
        injector.fail_rank(1)
        comm.allreduce("11", 256, src_offset=src, dst_offset=src)
        # healthy plan still cached, degraded plan cached separately
        assert len(comm.cache) == 2


# ----------------------------------------------------------------------
# PlanCache statistics (regression: per-lookup hit flag, zero lookups)
# ----------------------------------------------------------------------
class TestPlanCacheStats:
    def test_hit_rate_defined_at_zero_lookups(self):
        cache = PlanCache()
        assert cache.lookups == 0
        assert cache.hit_rate == 0.0  # must not raise

    def test_fetch_reports_per_lookup_hit(self):
        cache = PlanCache()
        key_a = ("a",)
        key_b = ("b",)
        plan, hit = cache.fetch(key_a, lambda: "plan-a")
        assert (plan, hit) == ("plan-a", False)
        plan, hit = cache.fetch(key_a, lambda: "plan-a2")
        assert (plan, hit) == ("plan-a", True)
        plan, hit = cache.fetch(key_b, lambda: "plan-b")
        assert (plan, hit) == ("plan-b", False)
        assert cache.hits == 1 and cache.misses == 2

    def test_nested_builder_lookup_does_not_lie(self):
        # The old hits-differencing idiom reported the *outer* miss as a
        # hit whenever the builder performed a hitting lookup of its
        # own.  fetch() must report each lookup's own outcome.
        cache = PlanCache()
        cache.fetch(("inner",), lambda: "inner-plan")

        def builder():
            inner, inner_hit = cache.fetch(("inner",), lambda: "x")
            assert inner_hit  # the nested lookup hits...
            return "outer-plan"

        plan, hit = cache.fetch(("outer",), builder)
        assert plan == "outer-plan"
        assert hit is False  # ...but the outer one is still a miss

    def test_engine_stats_match_cache_counters(self):
        manager = make_manager((4, 8))
        comm = Communicator(manager, SessionConfig(functional=False))
        for _ in range(3):
            comm.allreduce("11", 256, functional=False)
        assert comm.stats.plans_compiled == 1
        assert comm.stats.cache_hits == 2
        assert comm.cache.hits == 2
        assert comm.cache.lookups == 3


# ----------------------------------------------------------------------
# Trace integration
# ----------------------------------------------------------------------
class TestTraceIntegration:
    def test_render_reliability_block(self, rng):
        from repro.analysis.trace import render_reliability
        manager = make_manager((4, 8))
        system = manager.system
        injector = FaultInjector(seed=3, timeout_rate=0.2)
        comm = Communicator(manager, SessionConfig(fault_injector=injector))
        assert render_reliability(comm.stats) == \
            "Reliability(no faults observed)"
        src = system.alloc(1 << 10)
        fill_group_inputs(system, groups_of(manager, "11"), src, 128,
                          INT64, rng)
        comm.allreduce("11", 1 << 10, src_offset=src, dst_offset=src)
        text = render_reliability(comm.stats)
        assert "retries" in text and "timeout" in text
        assert str(comm.stats.retries) in text

    def test_batch_timeline_annotates_retries(self, rng):
        from repro.analysis.trace import render_batch_timeline, trace_batch
        manager = make_manager((4, 8))
        system = manager.system
        injector = FaultInjector(seed=3, timeout_rate=0.2)
        comm = Communicator(manager, SessionConfig(fault_injector=injector))
        src = system.alloc(1 << 10)
        dst = system.alloc(1 << 10)
        fill_group_inputs(system, groups_of(manager, "11"), src, 128,
                          INT64, rng)
        batch = comm.submit([
            CommRequest("allreduce", "11", 1 << 10, src_offset=src,
                        dst_offset=dst)])
        traces = trace_batch(batch)
        retries = sum(t.retries for t in traces)
        assert retries == sum(f.result().attempts - 1 for f in batch)
        if retries:
            assert "retries]" in render_batch_timeline(batch)
