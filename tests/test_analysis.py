"""Tests for the experiment harnesses and report rendering.

Beyond plumbing, these pin the *shape* claims of the paper's
evaluation: who wins each comparison, the direction of every trend, and
the rough magnitude of the headline ratios (with generous tolerance --
absolute calibration is documented in EXPERIMENTS.md).
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import geomean, render_dict_rows, render_table


class TestReport:
    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([3]) == pytest.approx(3.0)

    def test_geomean_validation(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.001]],
                            title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_dict_rows(self):
        text = render_dict_rows([{"x": 1, "y": True}, {"x": 2, "y": False}])
        assert "yes" in text and "-" in text

    def test_render_empty(self):
        assert render_dict_rows([], title="none") == "none"


class TestTables:
    def test_table1_matches_paper(self):
        rows = {r["framework"]: r for r in E.table1()}
        assert rows["PID-Comm"]["multi_instance"]
        assert not rows["SimplePIM"]["multi_instance"]
        assert not rows["SimplePIM"]["reduce_scatter"]
        assert rows["PID-Comm"]["performance"] == "Optimized"

    def test_table3_six_apps(self):
        assert len(E.table3()) == 6


class TestFig14:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r["primitive"]: r for r in E.fig14_primitives()}

    def test_headline_speedups_in_band(self, rows):
        # Paper: AA 5.19x, RS 4.46x, AR 4.23x; allow +-25%.
        assert rows["alltoall"]["speedup"] == pytest.approx(5.19, rel=0.25)
        assert rows["reduce_scatter"]["speedup"] == pytest.approx(
            4.46, rel=0.25)
        assert rows["allreduce"]["speedup"] == pytest.approx(4.23, rel=0.25)

    def test_broadcast_is_a_wash(self, rows):
        assert rows["broadcast"]["speedup"] == pytest.approx(1.0, abs=0.05)

    def test_geomean_near_paper(self, rows):
        assert rows["geomean"]["speedup"] == pytest.approx(2.83, rel=0.25)

    def test_alltoall_throughput_magnitude(self, rows):
        # Paper Figure 20 reports AlltoAll up to 20.6 GB/s.
        assert rows["alltoall"]["pidcomm_gbps"] == pytest.approx(
            20.6, rel=0.25)


class TestFig16:
    def test_ladder_monotone_for_every_primitive(self):
        for row in E.fig16_ablation():
            values = [row["Baseline"], row["+PR"], row["+IM"], row["+CM"]]
            assert values == sorted(values), row

    def test_step_geomeans_in_band(self):
        steps = {s["step"]: s for s in E.fig16_step_geomeans()}
        # Paper: PR 1.48x, IM 2.03x, CM 1.42x (CM over AA/AG only).
        assert steps["Baseline -> +PR"]["geomean_all"] == pytest.approx(
            1.48, rel=0.3)
        assert steps["+IM -> +CM"]["geomean_where_applicable"] == \
            pytest.approx(1.42, rel=0.3)
        assert steps["+PR -> +IM"]["geomean_all"] > 1.5


class TestFig17:
    def test_im_removes_host_mem_cm_removes_dt(self):
        rows = E.fig17_breakdown()
        by_key = {(r["primitive"], r["config"]): r for r in rows}
        for prim in ("alltoall", "allgather"):
            assert by_key[(prim, "+PR")]["host_mem"] > 0
            assert by_key[(prim, "+IM")]["host_mem"] == 0
            assert by_key[(prim, "+IM")]["dt"] > 0
            assert by_key[(prim, "+CM")]["dt"] == 0
        # Arithmetic primitives keep the domain transfer even at +CM.
        assert by_key[("reduce_scatter", "+CM")]["dt"] > 0

    def test_pe_overhead_is_minor(self):
        rows = E.fig17_breakdown()
        for row in rows:
            if row["config"] == "+CM":
                assert row["pe"] < 0.15 * row["total_s"]


class TestFig18:
    def test_speedup_grows_with_size(self):
        rows = E.fig18_datasize()
        for cube in ("1D", "2D"):
            for prim in ("alltoall", "reduce_scatter", "allreduce"):
                series = [r["speedup"] for r in rows
                          if r["cube"] == cube and r["primitive"] == prim]
                assert series == sorted(series), (cube, prim)

    def test_1d_allgather_baseline_competitive(self):
        """The 1-D baseline AllGather rides the fast broadcast; 2-D
        cannot (paper section VIII-E)."""
        rows = E.fig18_datasize(sizes=(8 << 20,))
        ag = {r["cube"]: r for r in rows if r["primitive"] == "allgather"}
        assert ag["1D"]["speedup"] < ag["2D"]["speedup"]


class TestFig19:
    def test_pidcomm_scales_baseline_does_not(self):
        rows = E.fig19_pe_scaling()
        for prim in ("alltoall", "reduce_scatter", "allreduce"):
            pid = [r["pidcomm_gbps"] for r in rows
                   if r["primitive"] == prim]
            base = [r["baseline_gbps"] for r in rows
                    if r["primitive"] == prim]
            # Paper: PID-Comm gains 2.36-4.20x from 64 -> 1024 PEs.
            assert 2.0 < pid[-1] / pid[0] < 5.0, prim
            # The baseline is host-bound: well below PID-Comm's scaling.
            assert base[-1] / base[0] < pid[-1] / pid[0], prim


class TestFig20:
    def test_shape_trends(self):
        rows = E.fig20_shapes()
        ag = [r["allgather"] for r in rows]
        rs = [r["reduce_scatter"] for r in rows]
        aa = [r["alltoall"] for r in rows]
        # AG and RS improve with a longer x axis; AA stays flat-ish.
        assert ag[-1] > 1.1 * ag[0]
        assert rs[-1] > rs[0]
        assert max(aa) / min(aa) < 1.6
        # Paper magnitudes: AG up to 36.1 GB/s, AA ~20.6 GB/s.
        assert ag[-1] == pytest.approx(36.1, rel=0.25)
        assert aa[0] == pytest.approx(20.6, rel=0.25)


class TestFig21:
    @pytest.fixture(scope="class")
    def rows(self):
        return E.fig21_cpu_comparison()

    def test_mlp_peak_speedup(self, rows):
        mlp = {r["pes"]: r for r in rows if r["app"] == "MLP"}
        # Paper: PID-Comm max 7.89x at MLP, growing with PEs.
        assert mlp[1024]["pidcomm_x"] == pytest.approx(7.89, rel=0.15)
        assert mlp[1024]["pidcomm_x"] > mlp[256]["pidcomm_x"]

    def test_cc_sweet_spot_at_64(self, rows):
        cc = {r["pes"]: r for r in rows if r["app"] == "CC"}
        # Paper: sweet spot at 64 PEs with 2.58x over CPU.
        assert cc[64]["pidcomm_x"] == pytest.approx(2.58, rel=0.15)
        assert cc[64]["pidcomm_x"] > cc[32]["pidcomm_x"]
        assert cc[64]["pidcomm_x"] > cc[256]["pidcomm_x"]

    def test_pidcomm_beats_pim_baseline_everywhere(self, rows):
        for row in rows:
            assert row["pidcomm_x"] >= row["pim_baseline_x"], row

    def test_dlrm_excluded_below_256(self, rows):
        assert not [r for r in rows
                    if r["app"] == "DLRM" and r["pes"] < 256]


class TestFig22:
    def test_8bit_unlocks_cross_domain(self):
        rows = E.fig22_wordbits()
        rs = {r["width"]: r for r in rows if r["strategy"] == "rs_ar"}
        # Paper: 8-bit GNN achieves 1.64x geomean over the baseline.
        eight = geomean([r["speedup"] for r in rows if r["width"] == "int8"])
        assert eight == pytest.approx(1.64, rel=0.3)
        # Narrower data -> less absolute time.
        assert rs["int8"]["pidcomm_s"] < rs["int64"]["pidcomm_s"]


class TestFig23:
    def test_topology_ordering(self):
        rows = {r["topology"]: r for r in E.fig23a_topologies()}
        assert rows["ring"]["slowdown"] > 1.0
        assert rows["tree"]["slowdown"] > rows["ring"]["slowdown"]
        # Paper: ring at most 2.05x slower.
        assert rows["ring"]["slowdown"] == pytest.approx(2.05, rel=0.3)

    def test_multihost_asymmetry(self):
        rows = E.fig23b_multihost()
        four = [r for r in rows if r["hosts"] == 4][0]
        one = [r for r in rows if r["hosts"] == 1][0]
        assert one["allreduce_mpi_s"] == 0.0
        assert four["alltoall_mpi_s"] > 10 * four["allreduce_mpi_s"]
        assert four["alltoall_mpi_frac"] > 0.3
        # Section IX-A: RS (sent after reduction) and AG (sent before
        # duplication) stay cheap like AllReduce, unlike AlltoAll.
        assert four["reduce_scatter_mpi_s"] < four["allreduce_mpi_s"] * 2
        assert four["allgather_mpi_s"] < four["alltoall_mpi_s"] / 10


class TestExtraAblations:
    def test_fused_allreduce_wins(self):
        # The composed form pays the extra round trip of the reduced
        # chunks plus an extra launch; the margin is small but real.
        rows = E.ablation_fused_allreduce()
        assert rows[1]["overhead_x"] > 1.005

    def test_eg_alignment_matters(self):
        rows = E.ablation_eg_alignment()
        assert rows[1]["slowdown_x"] > 4.0


class TestFig04And13:
    def test_motivation_comm_dominates_baseline(self):
        for row in E.fig04_motivation():
            assert row["comm_frac"] > 0.3, row["app"]

    def test_breakdown_rows_complete(self):
        rows = E.fig13_app_breakdown()
        assert len(rows) == 12  # 6 apps x 2 backends
        for row in rows:
            parts = sum(row[k] for k in row
                        if k not in ("app", "backend", "total_s"))
            assert parts == pytest.approx(row["total_s"], rel=1e-6)

    def test_fig15_range(self):
        rows = E.fig15_app_speedup()
        speedups = [r["speedup"] for r in rows if r["app"] != "geomean"]
        assert min(speedups) > 1.0
        assert all(s < 6.0 for s in speedups)
        by_app = {r["app"]: r["speedup"] for r in rows}
        # Paper: DLRM benefits least, CC most.
        assert by_app["DLRM"] == min(speedups)
        assert by_app["CC"] == max(speedups)


class TestPaperClaims:
    """The machine-checkable claim registry behind EXPERIMENTS.md."""

    @pytest.fixture(scope="class")
    def verdicts(self):
        from repro.analysis.paper_claims import evaluate_claims
        return evaluate_claims()

    def test_all_strict_claims_hold(self, verdicts):
        failures = [r for r in verdicts
                    if r["strict"] and not r["within_tol"]]
        assert not failures, failures

    def test_loose_claims_documented(self, verdicts):
        # The known deviations must stay loose (non-strict), so a future
        # calibration improvement is flagged by flipping them strict.
        loose = {r["id"] for r in verdicts if not r["strict"]}
        assert loose == {"im-step", "app-geomean", "cpu-base-geomean",
                         "cpu-pid-geomean", "tree-slowdown"}

    def test_coverage_of_eval_figures(self, verdicts):
        figures = {r["figure"] for r in verdicts}
        assert {"Fig 14", "Fig 16", "Fig 18", "Fig 15", "Fig 20",
                "Fig 21", "Fig 22", "Fig 23a"} <= figures


class TestDeterminism:
    """Experiments are pure functions of the calibrated parameters."""

    def test_repeated_runs_identical(self):
        import json
        a = json.dumps(E.fig14_primitives(), sort_keys=True)
        b = json.dumps(E.fig14_primitives(), sort_keys=True)
        assert a == b

    def test_app_experiments_deterministic(self):
        import json
        a = json.dumps(E.fig15_app_speedup(), sort_keys=True)
        b = json.dumps(E.fig15_app_speedup(), sort_keys=True)
        assert a == b


class TestTable2:
    def test_matches_paper_matrix(self):
        rows = {r["primitive"]: r for r in E.table2()}
        # PR: AA, RS, AR, AG, Re (paper Table II row 1).
        pr = {p for p, r in rows.items() if r["pe_assisted_reordering"]}
        assert pr == {"alltoall", "reduce_scatter", "allreduce",
                      "allgather", "reduce"}
        # IM: everything except Broadcast (row 2).
        im = {p for p, r in rows.items() if r["in_register_modulation"]}
        assert im == set(rows) - {"broadcast"}
        # CM: AA and AG only (row 3; 64-bit elements).
        cm = {p for p, r in rows.items() if r["cross_domain_modulation"]}
        assert cm == {"alltoall", "allgather"}
