"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import FULL, HypercubeManager, pidcomm_allreduce, pidcomm_alltoall
from repro.core import reference as ref
from repro.core.collectives.steps import slot_permutation
from repro.core.groups import slice_groups
from repro.core.hypercube import HypercubeShape
from repro.dtypes import INT32, INT64, MAX, MIN, SUM
from repro.hw import domain
from repro.hw.system import DimmSystem

lane_counts = st.sampled_from([2, 4, 8, 16])


@st.composite
def lane_matrices(draw):
    lanes = draw(lane_counts)
    cols = draw(st.integers(1, 16)) * lanes
    data = draw(st.binary(min_size=lanes * cols, max_size=lanes * cols))
    return np.frombuffer(data, dtype=np.uint8).reshape(lanes, cols).copy()


class TestDomainProperties:
    @given(lane_matrices())
    def test_domain_transfer_roundtrip(self, mat):
        assert np.array_equal(
            domain.host_to_pim(domain.pim_to_host(mat), mat.shape[0]), mat)

    @given(lane_matrices(), st.integers(-20, 20))
    def test_rotate_is_invertible(self, mat, amount):
        rolled = domain.rotate_lanes(mat, amount)
        back = domain.rotate_lanes(rolled, -amount)
        assert np.array_equal(back, mat)

    @given(lane_matrices())
    def test_transfer_preserves_multiset(self, mat):
        host = domain.pim_to_host(mat)
        assert sorted(host.tolist()) == sorted(mat.reshape(-1).tolist())


class TestSlotPermutationProperties:
    @given(st.integers(1, 64), st.integers(0, 63))
    def test_rules_are_permutations(self, nslots, rank):
        for rule in ("identity", "rotate_left_rank", "reflect_rank"):
            perm = slot_permutation(rule, rank % nslots, nslots)
            assert sorted(perm.tolist()) == list(range(nslots))

    @given(st.integers(1, 64), st.integers(0, 63))
    def test_reflect_is_involution(self, nslots, rank):
        rank %= nslots
        perm = slot_permutation("reflect_rank", rank, nslots)
        assert np.array_equal(perm[perm], np.arange(nslots))


class TestShapeProperties:
    @given(st.lists(st.sampled_from([1, 2, 4, 8]), min_size=1, max_size=4))
    def test_node_index_bijective(self, dims):
        shape = HypercubeShape(tuple(dims))
        indices = {shape.node_index(shape.node_coords(i))
                   for i in range(shape.num_nodes)}
        assert indices == set(range(shape.num_nodes))


@st.composite
def cube_cases(draw):
    """A random small hypercube + dim selection + payload."""
    shape = draw(st.sampled_from(
        [(4, 4, 2), (8, 4), (4, 8), (16, 2), (2, 2, 2, 4), (32,)]))
    ndim = len(shape)
    bitmap = draw(st.integers(1, (1 << ndim) - 1))
    dims = "".join("1" if bitmap & (1 << i) else "0" for i in range(ndim))
    chunk_elems = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**31))
    return shape, dims, chunk_elems, seed


class TestCollectiveProperties:
    @given(cube_cases())
    @settings(max_examples=25, deadline=None)
    def test_alltoall_matches_reference(self, case):
        shape, dims, chunk_elems, seed = case
        rng = np.random.default_rng(seed)
        system = DimmSystem.small(mram_bytes=1 << 16)
        manager = HypercubeManager(system, shape=shape)
        groups = slice_groups(manager, dims)
        n = groups[0].size
        elems = n * chunk_elems
        total = elems * 8
        src, dst = system.alloc(total), system.alloc(total)
        inputs = {}
        for g in groups:
            vecs = [rng.integers(-1000, 1000, elems) for _ in g.pe_ids]
            for pe, v in zip(g.pe_ids, vecs):
                system.write_elements(pe, src, v, INT64)
            inputs[g.instance] = vecs
        pidcomm_alltoall(manager, dims, total, src, dst, INT64, config=FULL)
        for g in groups:
            expect = ref.alltoall(inputs[g.instance])
            for pe, want in zip(g.pe_ids, expect):
                got = system.read_elements(pe, dst, elems, INT64)
                assert np.array_equal(got, want)

    @given(cube_cases(), st.sampled_from([SUM, MIN, MAX]))
    @settings(max_examples=25, deadline=None)
    def test_allreduce_matches_reference(self, case, op):
        shape, dims, chunk_elems, seed = case
        rng = np.random.default_rng(seed)
        system = DimmSystem.small(mram_bytes=1 << 16)
        manager = HypercubeManager(system, shape=shape)
        groups = slice_groups(manager, dims)
        n = groups[0].size
        elems = n * chunk_elems
        total = elems * 4
        src, dst = system.alloc(total), system.alloc(total)
        inputs = {}
        for g in groups:
            vecs = [rng.integers(-1000, 1000, elems).astype(np.int32)
                    for _ in g.pe_ids]
            for pe, v in zip(g.pe_ids, vecs):
                system.write_elements(pe, src, v, INT32)
            inputs[g.instance] = vecs
        pidcomm_allreduce(manager, dims, total, src, dst, INT32, op,
                          config=FULL)
        for g in groups:
            expect = ref.allreduce(inputs[g.instance], op)
            for pe, want in zip(g.pe_ids, expect):
                got = system.read_elements(pe, dst, elems, INT32)
                assert np.array_equal(got, want)

    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_alltoall_is_involution(self, seed):
        """AlltoAll applied twice restores the original buffers."""
        rng = np.random.default_rng(seed)
        system = DimmSystem.small(mram_bytes=1 << 16)
        manager = HypercubeManager(system, shape=(4, 8))
        groups = slice_groups(manager, "10")
        total = 4 * 8
        a, b = system.alloc(total), system.alloc(total)
        originals = {}
        for g in groups:
            for pe in g.pe_ids:
                v = rng.integers(0, 1000, 4)
                system.write_elements(pe, a, v, INT64)
                originals[pe] = v
        pidcomm_alltoall(manager, "10", total, a, b, INT64)
        pidcomm_alltoall(manager, "10", total, b, a, INT64)
        for pe, want in originals.items():
            assert np.array_equal(system.read_elements(pe, a, 4, INT64), want)


class TestRootedProperties:
    @given(cube_cases())
    @settings(max_examples=15, deadline=None)
    def test_scatter_gather_roundtrip_any_cube(self, case):
        """Gather(Scatter(x)) == x for every cube slicing."""
        from repro import pidcomm_gather, pidcomm_scatter
        from repro.core.groups import slice_groups
        shape, dims, chunk_elems, seed = case
        rng = np.random.default_rng(seed)
        system = DimmSystem.small(mram_bytes=1 << 16)
        manager = HypercubeManager(system, shape=shape)
        groups = slice_groups(manager, dims)
        n = groups[0].size
        buf = system.alloc(chunk_elems * 8)
        payloads = {g.instance: rng.integers(0, 1 << 30,
                                             n * chunk_elems)
                    for g in groups}
        pidcomm_scatter(manager, dims, chunk_elems * 8, buf, INT64,
                        payloads=payloads)
        result = pidcomm_gather(manager, dims, chunk_elems * 8, buf, INT64)
        for g in groups:
            np.testing.assert_array_equal(
                result.host_outputs[g.instance], payloads[g.instance])

    @given(cube_cases(), st.sampled_from([SUM, MIN, MAX]))
    @settings(max_examples=15, deadline=None)
    def test_reduce_matches_reference_any_cube(self, case, op):
        from repro import pidcomm_reduce
        from repro.core.groups import slice_groups
        shape, dims, chunk_elems, seed = case
        rng = np.random.default_rng(seed)
        system = DimmSystem.small(mram_bytes=1 << 16)
        manager = HypercubeManager(system, shape=shape)
        groups = slice_groups(manager, dims)
        n = groups[0].size
        elems = n * chunk_elems
        buf = system.alloc(elems * 8)
        inputs = {}
        for g in groups:
            vecs = [rng.integers(-500, 500, elems) for _ in g.pe_ids]
            for pe, v in zip(g.pe_ids, vecs):
                system.write_elements(pe, buf, v, INT64)
            inputs[g.instance] = vecs
        result = pidcomm_reduce(manager, dims, elems * 8, buf, INT64, op)
        for g in groups:
            want = ref.reduce(inputs[g.instance], op)
            got = np.asarray(result.host_outputs[g.instance]).reshape(-1)
            np.testing.assert_array_equal(got, want)


class TestExoticGeometries:
    """Collectives must hold on any chips-per-rank (EG width)."""

    @given(st.sampled_from([2, 8]), st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_alltoall_on_other_eg_widths(self, chips, seed):
        from repro.hw.geometry import DimmGeometry
        rng = np.random.default_rng(seed)
        geometry = DimmGeometry(2, 1, chips, 4)
        system = DimmSystem(geometry, mram_bytes=1 << 16)
        manager = HypercubeManager(system, shape=(chips * 4, 2))
        from repro.core.groups import slice_groups
        groups = slice_groups(manager, "10")
        n = groups[0].size
        total = n * 8
        src, dst = system.alloc(total), system.alloc(total)
        inputs = {}
        for g in groups:
            vecs = [rng.integers(0, 1000, n) for _ in g.pe_ids]
            for pe, v in zip(g.pe_ids, vecs):
                system.write_elements(pe, src, v, INT64)
            inputs[g.instance] = vecs
        pidcomm_alltoall(manager, "10", total, src, dst, INT64)
        for g in groups:
            expect = ref.alltoall(inputs[g.instance])
            for pe, want in zip(g.pe_ids, expect):
                np.testing.assert_array_equal(
                    system.read_elements(pe, dst, n, INT64), want)
