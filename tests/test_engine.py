"""The execution engine: plan cache, batched submission, overlap pricing.

Covers the ISSUE acceptance criteria directly:

* steady-state repeated collectives through a :class:`Communicator`
  perform **zero re-planning** (the cache-hit counter is asserted);
* a batch of data-independent group instances prices **strictly
  cheaper** than the serial sum of its members while staying
  **bit-exact** against ``core/reference.py``;
* the legacy ``pidcomm_*`` shims and the session methods produce
  identical bytes for all eight primitives.
"""

import numpy as np
import pytest

from repro import (
    BASELINE,
    FULL,
    PR_ONLY,
    BatchResult,
    CommRequest,
    Communicator,
    PlanCache,
    SessionConfig,
    pidcomm_allgather,
    pidcomm_allreduce,
    pidcomm_alltoall,
    pidcomm_broadcast,
    pidcomm_gather,
    pidcomm_reduce,
    pidcomm_reduce_scatter,
    pidcomm_scatter,
)
from repro.analysis.trace import render_batch_timeline, trace_batch
from repro.apps.base import AppHarness, PidCommBackend
from repro.core import reference as ref
from repro.core.api import pidcomm_alltoall as shim_alltoall
from repro.dtypes import INT32, INT64, SUM
from repro.engine import schedule_waves, shared_communicator
from repro.engine.cache import bind_payloads
from repro.engine.request import Footprint
from repro.engine.stats import EngineStats
from repro.errors import CollectiveError, PidCommError
from repro.hw.timing import CostLedger

from .helpers import fill_group_inputs, groups_of, make_manager


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def seeded_setup(dims="010", chunk_elems=2, shape=(4, 4, 2), seed=7):
    """A manager with random int64 inputs written at a fresh src buffer."""
    rng = np.random.default_rng(seed)
    manager = make_manager(shape)
    system = manager.system
    groups = groups_of(manager, dims)
    n = groups[0].size
    elems = n * chunk_elems
    total = elems * INT64.itemsize
    src = system.alloc(total)
    dst = system.alloc(n * total)  # roomy enough for allgather too
    inputs = fill_group_inputs(system, groups, src, elems, INT64, rng)
    return manager, groups, total, src, dst, inputs


# ----------------------------------------------------------------------
# CostLedger.merge_concurrent
# ----------------------------------------------------------------------
class TestMergeConcurrent:
    def test_overlappable_max_others_sum(self):
        a = CostLedger()
        a.add("bus", 3.0)
        a.add("pe", 1.0)
        a.add("dt", 2.0)
        b = CostLedger()
        b.add("bus", 1.0)
        b.add("pe", 4.0)
        b.add("dt", 5.0)
        merged = CostLedger.merge_concurrent([a, b])
        assert merged.seconds["bus"] == 3.0   # max
        assert merged.seconds["pe"] == 4.0    # max
        assert merged.seconds["dt"] == 7.0    # sum (host-core bound)

    def test_launch_paid_once(self):
        ledgers = []
        for _ in range(5):
            lg = CostLedger()
            lg.add("launch", 0.25)
            ledgers.append(lg)
        assert CostLedger.merge_concurrent(ledgers).total == 0.25

    def test_identity_on_single_ledger(self):
        lg = CostLedger()
        lg.add("bus", 1.5)
        lg.add("host_mem", 0.5)
        merged = CostLedger.merge_concurrent([lg])
        assert merged.total == pytest.approx(lg.total)

    def test_never_exceeds_serial_sum(self):
        a = CostLedger()
        a.add("bus", 2.0)
        b = CostLedger()
        b.add("host_reduce", 3.0)
        merged = CostLedger.merge_concurrent([a, b])
        assert merged.total <= a.total + b.total

    def test_custom_overlappable_categories(self):
        a = CostLedger()
        a.add("dt", 2.0)
        b = CostLedger()
        b.add("dt", 3.0)
        merged = CostLedger.merge_concurrent([a, b], overlappable=("dt",))
        assert merged.total == 3.0


# ----------------------------------------------------------------------
# PlanCache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_hit_and_miss_counters(self):
        cache = PlanCache()
        built = []
        key = ("k",)
        cache.get_or_build(key, lambda: built.append(1) or "plan")
        cache.get_or_build(key, lambda: built.append(1) or "plan")
        assert (cache.hits, cache.misses, len(built)) == (1, 1, 1)
        assert cache.hit_rate == 0.5
        assert key in cache and len(cache) == 1

    def test_lru_eviction_at_maxsize(self):
        cache = PlanCache(maxsize=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 1)   # refresh "a"
        cache.get_or_build("c", lambda: 3)   # evicts "b", the LRU entry
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_clear_resets_counters(self):
        cache = PlanCache()
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)
        assert cache.hit_rate == 0.0


# ----------------------------------------------------------------------
# Communicator: cache semantics (ISSUE acceptance: zero re-planning)
# ----------------------------------------------------------------------
class TestCommunicatorCache:
    def test_steady_state_zero_replanning(self):
        manager, _, total, src, dst, _ = seeded_setup()
        comm = Communicator(manager, SessionConfig(functional=False))
        results = [comm.allreduce("010", total, src_offset=src,
                                  dst_offset=dst) for _ in range(6)]
        # One compile, five hits: the steady state never re-plans.
        assert comm.cache.misses == 1
        assert comm.cache.hits == 5
        assert not results[0].cached
        assert all(r.cached for r in results[1:])
        # Identical object, not an equal rebuild.
        assert all(r.plan is results[0].plan for r in results)

    def test_differing_optconfig_misses(self):
        manager, _, total, src, dst, _ = seeded_setup()
        comm = Communicator(manager, SessionConfig(functional=False))
        comm.alltoall("010", total, src_offset=src, dst_offset=dst)
        comm.alltoall("010", total, src_offset=src, dst_offset=dst,
                      config=BASELINE)
        comm.alltoall("010", total, src_offset=src, dst_offset=dst,
                      config=PR_ONLY)
        assert comm.cache.misses == 3 and comm.cache.hits == 0

    def test_differing_dtype_misses(self):
        manager, _, total, src, dst, _ = seeded_setup()
        comm = Communicator(manager, SessionConfig(functional=False))
        comm.alltoall("010", total, src_offset=src, dst_offset=dst)
        comm.alltoall("010", total, src_offset=src, dst_offset=dst,
                      data_type=INT32)
        assert comm.cache.misses == 2 and comm.cache.hits == 0

    def test_equivalent_dims_spellings_share_a_plan(self):
        manager, _, total, src, dst, _ = seeded_setup()
        comm = Communicator(manager, SessionConfig(functional=False))
        comm.alltoall("010", total, src_offset=src, dst_offset=dst)
        comm.alltoall([1], total, src_offset=src, dst_offset=dst)
        assert comm.cache.hits == 1

    def test_irrelevant_op_coalesces_for_nonarithmetic(self):
        manager, _, total, src, dst, _ = seeded_setup()
        comm = Communicator(manager, SessionConfig(functional=False))
        comm.submit([CommRequest("alltoall", "010", total, src_offset=src,
                                 dst_offset=dst, reduction_type="sum"),
                     CommRequest("alltoall", "010", total, src_offset=src,
                                 dst_offset=dst, reduction_type="min")],
                    functional=False)
        assert comm.cache.misses == 1 and comm.cache.hits == 1

    def test_cached_functional_result_stays_bit_exact(self):
        manager, groups, total, src, dst, inputs = seeded_setup()
        comm = Communicator(manager)
        n = groups[0].size
        elems = total // INT64.itemsize
        for repeat in range(3):
            comm.alltoall("010", total, src_offset=src, dst_offset=dst)
            for group in groups:
                expect = ref.alltoall(inputs[group.instance])
                for pe, want in zip(group.pe_ids, expect):
                    got = manager.system.read_elements(pe, dst, elems, INT64)
                    np.testing.assert_array_equal(got, want)
        assert comm.cache.misses == 1 and comm.cache.hits == 2
        assert n > 1  # a real exchange, not a degenerate copy

    def test_legacy_shims_share_the_session_cache(self):
        manager, _, total, src, dst, _ = seeded_setup()
        pidcomm_alltoall(manager, "010", total, src, dst, INT64,
                         functional=False)
        pidcomm_alltoall(manager, "010", total, src, dst, INT64,
                         functional=False)
        session = shared_communicator(manager)
        assert session.cache.misses == 1 and session.cache.hits == 1
        assert shared_communicator(manager) is session

    def test_scatter_plans_cached_payload_free(self, rng):
        manager = make_manager((4, 4, 2))
        system = manager.system
        groups = groups_of(manager, "101")
        n = groups[0].size
        dst = system.alloc(16)
        comm = Communicator(manager)
        for _ in range(2):  # fresh payloads each call, same cached plan
            payloads = {g.instance:
                        rng.integers(0, 99, n * 2).astype(np.int64)
                        for g in groups}
            comm.scatter("101", 16, dst_offset=dst, payloads=payloads)
            for group in groups:
                expect = ref.scatter(payloads[group.instance], n)
                for pe, want in zip(group.pe_ids, expect):
                    np.testing.assert_array_equal(
                        system.read_elements(pe, dst, 2, INT64), want)
        assert comm.cache.misses == 1 and comm.cache.hits == 1

    def test_functional_scatter_without_payloads_rejected(self):
        manager = make_manager((4, 4, 2))
        manager.system.alloc(16)
        comm = Communicator(manager)
        with pytest.raises(CollectiveError, match="payloads"):
            comm.scatter("100", 16)


# ----------------------------------------------------------------------
# Shim vs. session equivalence (Figure-10 fidelity)
# ----------------------------------------------------------------------
class TestShimSessionEquivalence:
    """Same seed, two managers: legacy shim vs. Communicator method."""

    DIMS = "110"

    def _pair(self):
        a = seeded_setup(self.DIMS, seed=11)
        b = seeded_setup(self.DIMS, seed=11)
        return a, b

    def _compare_region(self, pair_a, pair_b, offset, elems):
        manager_a, groups, *_ = pair_a
        manager_b = pair_b[0]
        for group in groups:
            for pe in group.pe_ids:
                np.testing.assert_array_equal(
                    manager_a.system.read_elements(pe, offset, elems, INT64),
                    manager_b.system.read_elements(pe, offset, elems, INT64))

    def test_alltoall(self):
        (ma, _, total, src, dst, _), pb = self._pair()
        pidcomm_alltoall(ma, self.DIMS, total, src, dst, INT64)
        Communicator(pb[0]).alltoall(self.DIMS, total, src_offset=src,
                                     dst_offset=dst)
        self._compare_region((ma, pb[1]), pb, dst, total // 8)

    def test_allgather(self):
        (ma, groups, total, src, dst, _), pb = self._pair()
        n = groups[0].size
        pidcomm_allgather(ma, self.DIMS, total, src, dst, INT64)
        Communicator(pb[0]).allgather(self.DIMS, total, src_offset=src,
                                      dst_offset=dst)
        self._compare_region((ma, groups), pb, dst, n * total // 8)

    def test_reduce_scatter(self):
        (ma, groups, total, src, dst, _), pb = self._pair()
        n = groups[0].size
        pidcomm_reduce_scatter(ma, self.DIMS, total, src, dst, INT64, SUM)
        Communicator(pb[0]).reduce_scatter(self.DIMS, total, src_offset=src,
                                           dst_offset=dst)
        self._compare_region((ma, groups), pb, dst, total // n // 8)

    def test_allreduce(self):
        (ma, groups, total, src, dst, _), pb = self._pair()
        pidcomm_allreduce(ma, self.DIMS, total, src, dst, INT64, SUM)
        Communicator(pb[0]).allreduce(self.DIMS, total, src_offset=src,
                                      dst_offset=dst)
        self._compare_region((ma, groups), pb, dst, total // 8)

    def test_gather(self):
        (ma, groups, total, src, _, _), pb = self._pair()
        legacy = pidcomm_gather(ma, self.DIMS, total, src, INT64)
        session = Communicator(pb[0]).gather(self.DIMS, total,
                                             src_offset=src)
        for group in groups:
            np.testing.assert_array_equal(
                legacy.host_outputs[group.instance],
                session.host_outputs[group.instance])

    def test_reduce(self):
        (ma, groups, total, src, _, _), pb = self._pair()
        legacy = pidcomm_reduce(ma, self.DIMS, total, src, INT64, SUM)
        session = Communicator(pb[0]).reduce(self.DIMS, total,
                                             src_offset=src)
        for group in groups:
            np.testing.assert_array_equal(
                np.asarray(legacy.host_outputs[group.instance]).reshape(-1),
                np.asarray(session.host_outputs[group.instance]).reshape(-1))

    def test_scatter(self, rng):
        (ma, groups, _, _, dst, _), pb = self._pair()
        n = groups[0].size
        payloads = {g.instance: rng.integers(0, 99, n * 2).astype(np.int64)
                    for g in groups}
        pidcomm_scatter(ma, self.DIMS, 16, dst, INT64, payloads=payloads)
        Communicator(pb[0]).scatter(self.DIMS, 16, dst_offset=dst,
                                    payloads=payloads)
        self._compare_region((ma, groups), pb, dst, 2)

    def test_broadcast(self, rng):
        (ma, groups, _, _, dst, _), pb = self._pair()
        payloads = {g.instance: rng.integers(0, 99, 4).astype(np.int64)
                    for g in groups}
        pidcomm_broadcast(ma, self.DIMS, 32, dst, INT64, payloads=payloads)
        Communicator(pb[0]).broadcast(self.DIMS, 32, dst_offset=dst,
                                      payloads=payloads)
        self._compare_region((ma, groups), pb, dst, 4)

    def test_shim_reexport_is_the_same_object(self):
        assert shim_alltoall is pidcomm_alltoall


# ----------------------------------------------------------------------
# Batched submission
# ----------------------------------------------------------------------
def independent_batch(k=3, dims="010", chunk_elems=2, seed=7):
    """k alltoall requests over disjoint buffer pairs on one manager."""
    rng = np.random.default_rng(seed)
    manager = make_manager((4, 4, 2), mram_bytes=1 << 18)
    system = manager.system
    groups = groups_of(manager, dims)
    n = groups[0].size
    elems = n * chunk_elems
    total = elems * INT64.itemsize
    requests, buffers, inputs = [], [], []
    for _ in range(k):
        src, dst = system.alloc(total), system.alloc(total)
        inputs.append(fill_group_inputs(system, groups, src, elems, INT64,
                                        rng))
        buffers.append((src, dst))
        requests.append(CommRequest("alltoall", dims, total, src_offset=src,
                                    dst_offset=dst))
    return manager, groups, elems, requests, buffers, inputs


class TestBatchSubmit:
    def test_independent_batch_single_wave(self):
        manager, _, _, requests, _, _ = independent_batch()
        batch = Communicator(manager).submit(requests, functional=False)
        assert batch.waves == [[0, 1, 2]]

    def test_independent_batch_strictly_cheaper_than_serial(self):
        """ISSUE acceptance: overlap pricing beats the serial sum."""
        manager, _, _, requests, _, _ = independent_batch()
        batch = Communicator(manager).submit(requests, functional=False)
        assert batch.seconds < batch.serial_seconds
        assert batch.speedup > 1.0
        # Overlap can never price below the slowest member.
        slowest = max(f.result().seconds for f in batch)
        assert batch.seconds >= slowest

    def test_independent_batch_bit_exact(self):
        """ISSUE acceptance: batched execution matches the reference."""
        manager, groups, elems, requests, buffers, inputs = \
            independent_batch()
        Communicator(manager).submit(requests)
        for k, (_, dst) in enumerate(buffers):
            for group in groups:
                expect = ref.alltoall(inputs[k][group.instance])
                for pe, want in zip(group.pe_ids, expect):
                    got = manager.system.read_elements(pe, dst, elems, INT64)
                    np.testing.assert_array_equal(got, want)

    def test_dependent_chain_serializes_without_discount(self):
        manager, _, _, requests, buffers, _ = independent_batch(k=2)
        # Rewrite request 1 to read what request 0 writes: a RAW hazard.
        chained = [requests[0],
                   CommRequest("alltoall", "010",
                               requests[0].total_data_size,
                               src_offset=buffers[0][1],
                               dst_offset=buffers[1][1])]
        batch = Communicator(manager).submit(chained, functional=False)
        assert batch.waves == [[0], [1]]
        assert batch.seconds == pytest.approx(batch.serial_seconds)
        assert batch.speedup == pytest.approx(1.0)

    def test_estimate_matches_execution(self):
        """Analytic submit prices exactly what functional submit pays."""
        setup_a = independent_batch()
        setup_b = independent_batch()
        functional = Communicator(setup_a[0]).submit(setup_a[3])
        analytic = Communicator(setup_b[0]).submit(setup_b[3],
                                                   functional=False)
        assert functional.seconds == pytest.approx(analytic.seconds)
        assert functional.serial_seconds == pytest.approx(
            analytic.serial_seconds)
        assert functional.waves == analytic.waves

    def test_batch_equals_sum_of_wave_costs(self):
        manager, _, _, requests, buffers, _ = independent_batch(k=3)
        chained = list(requests[:2]) + [
            CommRequest("alltoall", "010", requests[0].total_data_size,
                        src_offset=buffers[0][1], dst_offset=buffers[2][1])]
        batch = Communicator(manager).submit(chained, functional=False)
        assert len(batch.wave_costs) == 2
        assert batch.seconds == pytest.approx(
            sum(c.ledger.total for c in batch.wave_costs))

    def test_futures_resolve_in_submission_order(self):
        manager, _, _, requests, _, _ = independent_batch()
        batch = Communicator(manager).submit(requests, functional=False)
        assert isinstance(batch, BatchResult)
        assert len(batch) == 3
        assert [f.index for f in batch] == [0, 1, 2]
        assert all(f.done() for f in batch)
        assert all(f.result().seconds > 0 for f in batch)
        assert "alltoall" in batch[0].label
        assert len(batch.results()) == 3
        assert "requests" in repr(batch) and "done" in repr(batch[0])

    def test_unresolved_future_raises(self):
        from repro.engine.result import CommFuture
        future = CommFuture(index=0, label="alltoall", wave=0)
        assert not future.done()
        with pytest.raises(PidCommError, match="no result yet"):
            future.result()

    def test_empty_submit_rejected(self):
        manager = make_manager((4, 4, 2))
        with pytest.raises(CollectiveError, match="at least one"):
            Communicator(manager).submit([])

    def test_inplace_source_counts_as_hazard(self):
        # allreduce permutes its src in place; a second request reading
        # the same src region must not share its wave.
        reqs = [CommRequest("allreduce", "010", 64, src_offset=0,
                            dst_offset=1024),
                CommRequest("gather", "010", 64, src_offset=0)]
        manager = make_manager((4, 4, 2))
        normalized = [r.normalize(manager,
                                  Communicator(manager).config)
                      for r in reqs]
        assert schedule_waves(normalized) == [[0], [1]]

    def test_footprint_overlap_rules(self):
        a = Footprint(reads=((0, 64),), writes=((64, 64),))
        b = Footprint(reads=((128, 64),), writes=((192, 64),))
        assert not a.conflicts_with(b)
        raw = Footprint(reads=((64, 8),), writes=())     # reads a's write
        war = Footprint(reads=(), writes=((0, 8),))      # writes a's read
        waw = Footprint(reads=(), writes=((120, 16),))   # overlaps a's write
        for other in (raw, war, waw):
            assert a.conflicts_with(other)
            assert other.conflicts_with(a)


# ----------------------------------------------------------------------
# Instrumentation: EngineStats, harness integration, batch timelines
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_stats_counters_and_report(self):
        manager, _, total, src, dst, _ = seeded_setup()
        comm = Communicator(manager, SessionConfig(functional=False))
        for _ in range(3):
            comm.allreduce("010", total, src_offset=src, dst_offset=dst)
        stats = comm.stats
        assert stats.calls == 3
        assert stats.plans_compiled == 1 and stats.cache_hits == 2
        assert stats.cache_misses == 1
        assert stats.cache_hit_rate == pytest.approx(2 / 3)
        assert stats.per_primitive_calls == {"allreduce": 3}
        assert stats.modelled_seconds > 0 and stats.bytes_moved > 0
        report = stats.report()
        assert "plans compiled  1" in report
        assert "allreduce" in report and "per category:" in report
        snap = stats.snapshot()
        assert snap["calls"] == 3 and snap["cache_hits"] == 2

    def test_batch_overlap_credit_recorded(self):
        manager, _, _, requests, _, _ = independent_batch()
        comm = Communicator(manager, SessionConfig(functional=False))
        batch = comm.submit(requests)
        assert comm.stats.batches == 1 and comm.stats.waves == 1
        assert comm.stats.overlap_saved_seconds == pytest.approx(
            batch.serial_seconds - batch.seconds)

    def test_reset_stats_keeps_cache(self):
        manager, _, total, src, dst, _ = seeded_setup()
        comm = Communicator(manager, SessionConfig(functional=False))
        comm.alltoall("010", total, src_offset=src, dst_offset=dst)
        comm.reset_stats()
        assert comm.stats.calls == 0 and len(comm.cache) == 1
        comm.alltoall("010", total, src_offset=src, dst_offset=dst)
        assert comm.stats.cache_hits == 1
        assert "cached plans" in comm.describe()

    def test_comm_result_repr_and_breakdown(self):
        manager, _, total, src, dst, _ = seeded_setup()
        result = Communicator(manager, SessionConfig(functional=False)).allreduce(
            "010", total, src_offset=src, dst_offset=dst)
        assert result.breakdown == result.ledger.breakdown()
        assert "CommResult(allreduce" in repr(result)
        again = Communicator(manager, SessionConfig(functional=False))
        again.allreduce("010", total, src_offset=src, dst_offset=dst)
        cached = again.allreduce("010", total, src_offset=src,
                                 dst_offset=dst)
        assert "cached plan" in repr(cached)

    def test_harness_caches_repeated_shapes(self):
        manager, _, total, src, dst, _ = seeded_setup()
        harness = AppHarness(manager, PidCommBackend(FULL),
                             functional=False)
        for _ in range(4):
            harness.comm_cost_only("allreduce", "010", total, src, dst)
        assert harness.cache.misses == 1 and harness.cache.hits == 3
        result = harness.result("unit-test")
        engine = result.meta["engine"]
        assert engine["plans_compiled"] == 1 and engine["cache_hits"] == 3

    def test_batch_timeline_rendering(self):
        manager, _, _, requests, buffers, _ = independent_batch(k=3)
        chained = list(requests[:2]) + [
            CommRequest("alltoall", "010", requests[0].total_data_size,
                        src_offset=buffers[0][1], dst_offset=buffers[2][1],
                        tag="drain")]
        batch = Communicator(manager).submit(chained, functional=False)
        traces = trace_batch(batch)
        assert [t.index for t in traces] == [0, 1]
        assert traces[0].overlap_saved > 0      # two overlapped instances
        assert traces[1].overlap_saved == 0.0   # a wave of one
        text = render_batch_timeline(batch)
        assert text.startswith("Batch(3 requests, 2 waves)")
        assert "wave 0" in text and "wave 1" in text
        assert "hides" in text and "drain[d" in text

    def test_stats_default_state(self):
        stats = EngineStats()
        assert stats.cache_hit_rate == 0.0
        assert "calls           0" in stats.report()


# ----------------------------------------------------------------------
# bind_payloads
# ----------------------------------------------------------------------
class TestBindPayloads:
    def test_none_payloads_returns_same_plan(self):
        manager, _, total, src, dst, _ = seeded_setup()
        comm = Communicator(manager, SessionConfig(functional=False))
        result = comm.alltoall("010", total, src_offset=src, dst_offset=dst)
        assert bind_payloads(result.plan, None) is result.plan

    def test_binding_copies_not_mutates_the_cached_plan(self, rng):
        manager = make_manager((4, 4, 2))
        groups = groups_of(manager, "101")
        n = groups[0].size
        dst = manager.system.alloc(16)
        comm = Communicator(manager)
        payloads = {g.instance: rng.integers(0, 99, n * 2).astype(np.int64)
                    for g in groups}
        comm.scatter("101", 16, dst_offset=dst, payloads=payloads)
        key = next(iter(comm.cache._plans))
        cached = comm.cache._plans[key].plan
        # The cached plan stays payload-free; the bound copy is separate.
        assert all(getattr(step, "payloads", None) is None
                   for step in cached.steps)
