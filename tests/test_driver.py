"""Tests for the UPMEM-SDK-style driver surface."""

import numpy as np
import pytest

from repro.dtypes import INT64
from repro.errors import AllocationError, TransferError
from repro.hw.driver import XFER_FROM_DPU, XFER_TO_DPU, DpuDriver
from repro.hw.system import DimmSystem


@pytest.fixture
def driver():
    return DpuDriver(DimmSystem.small(mram_bytes=1 << 16))


class TestAllocation:
    def test_rank_granularity(self, driver):
        dpu_set = driver.alloc_ranks(1)
        # The small system has 16 PEs per rank (4 chips x 4 banks).
        assert dpu_set.nr_dpus == 16
        assert dpu_set.pe_ids == tuple(range(16))

    def test_disjoint_allocations(self, driver):
        a = driver.alloc_ranks(1)
        b = driver.alloc_ranks(1)
        assert not set(a.pe_ids) & set(b.pe_ids)

    def test_exhaustion(self, driver):
        driver.alloc_ranks(2)  # the small system has 2 ranks total
        with pytest.raises(AllocationError, match="free"):
            driver.alloc_ranks(1)

    def test_free_recycles(self, driver):
        a = driver.alloc_ranks(2)
        driver.free(a)
        b = driver.alloc_ranks(2)
        assert b.rank_ids == a.rank_ids

    def test_iteration(self, driver):
        dpu_set = driver.alloc_ranks(1)
        assert list(dpu_set) == list(dpu_set.pe_ids)


class TestTransfers:
    def test_copy_roundtrip(self, driver):
        dpu_set = driver.alloc_ranks(1)
        data = np.arange(16, dtype=np.int64)
        seconds = driver.copy_to(dpu_set, 3, 64, data)
        assert seconds > 0
        back = driver.copy_from(dpu_set, 3, 64, 128)
        np.testing.assert_array_equal(back.view(np.int64), data)

    def test_push_xfer_roundtrip(self, driver):
        dpu_set = driver.alloc_ranks(1)
        buffers = [np.full(4, i, dtype=np.int64)
                   for i in range(dpu_set.nr_dpus)]
        driver.push_xfer(dpu_set, XFER_TO_DPU, 0, buffers=buffers)
        out = driver.push_xfer(dpu_set, XFER_FROM_DPU, 0, nbytes=32)
        for i, buf in enumerate(out):
            np.testing.assert_array_equal(buf.view(np.int64),
                                          buffers[i])

    def test_push_xfer_validation(self, driver):
        dpu_set = driver.alloc_ranks(1)
        with pytest.raises(TransferError, match="one buffer per DPU"):
            driver.push_xfer(dpu_set, XFER_TO_DPU, 0, buffers=[])
        with pytest.raises(TransferError, match="equal-sized"):
            driver.push_xfer(dpu_set, XFER_TO_DPU, 0, buffers=(
                [np.zeros(2, dtype=np.int64)]
                + [np.zeros(4, dtype=np.int64)] * 15))
        with pytest.raises(TransferError, match="nbytes"):
            driver.push_xfer(dpu_set, XFER_FROM_DPU, 0)
        with pytest.raises(TransferError, match="direction"):
            driver.push_xfer(dpu_set, "sideways", 0, nbytes=8)

    def test_disabling_domain_transfer_skips_dt_cost(self, driver):
        dpu_set = driver.alloc_ranks(1)
        buffers = [np.zeros(8, dtype=np.int64)] * dpu_set.nr_dpus
        driver.push_xfer(dpu_set, XFER_TO_DPU, 0, buffers=buffers,
                         domain_transfer=False)
        assert driver.ledger.get("dt") == 0.0
        assert driver.ledger.get("bus") > 0.0
        driver.push_xfer(dpu_set, XFER_TO_DPU, 0, buffers=buffers,
                         domain_transfer=True)
        assert driver.ledger.get("dt") > 0.0

    def test_broadcast_single_dt(self, driver):
        dpu_set = driver.alloc_ranks(2)
        payload = np.arange(8, dtype=np.int64)
        driver.broadcast_to(dpu_set, 128, payload)
        for pe in dpu_set.pe_ids:
            np.testing.assert_array_equal(
                driver.system.read_elements(pe, 128, 8, INT64), payload)
        # One DT for the whole broadcast, not one per PE.
        per_pe_dt = driver.system.params.dt_time(64)
        assert driver.ledger.get("dt") == pytest.approx(per_pe_dt)


class TestLaunch:
    def test_kernel_runs_per_dpu(self, driver):
        dpu_set = driver.alloc_ranks(1)
        seen = []

        def kernel(pe, system):
            seen.append(pe)
            system.memory(pe).write(0, np.array([pe % 256], dtype=np.uint8))

        driver.launch(dpu_set, kernel)
        assert seen == list(dpu_set.pe_ids)
        assert driver.system.memory(5).read(0, 1)[0] == 5

    def test_launch_charges_overhead(self, driver):
        dpu_set = driver.alloc_ranks(1)
        driver.launch(dpu_set)
        assert driver.ledger.get("launch") == pytest.approx(
            driver.system.params.kernel_launch_s)
