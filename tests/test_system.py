"""Unit tests for PE memories and the DimmSystem facade."""

import numpy as np
import pytest

from repro.dtypes import INT32, INT64
from repro.errors import AllocationError, TransferError
from repro.hw.memory import WRAM_BYTES, PeMemory
from repro.hw.system import DimmSystem


class TestPeMemory:
    def test_starts_zeroed(self):
        mem = PeMemory(1024)
        assert mem.read(0, 1024).sum() == 0
        assert mem.wram.size == WRAM_BYTES

    def test_write_read_roundtrip(self):
        mem = PeMemory(1024)
        data = np.arange(100, dtype=np.uint8)
        mem.write(50, data)
        assert np.array_equal(mem.read(50, 100), data)

    def test_out_of_bounds_rejected(self):
        mem = PeMemory(64)
        with pytest.raises(TransferError):
            mem.read(60, 8)
        with pytest.raises(TransferError):
            mem.write(60, np.zeros(8, dtype=np.uint8))
        with pytest.raises(TransferError):
            mem.read(-1, 4)

    def test_non_uint8_write_rejected(self):
        mem = PeMemory(64)
        with pytest.raises(TransferError):
            mem.write(0, np.zeros(4, dtype=np.int32))

    def test_view_aliases_bank(self):
        mem = PeMemory(64)
        view = mem.view(8, 4)
        view[:] = 7
        assert mem.read(8, 4).tolist() == [7, 7, 7, 7]

    def test_bad_size_rejected(self):
        with pytest.raises(AllocationError):
            PeMemory(0)


class TestAllocation:
    def test_alloc_is_bump_and_aligned(self):
        system = DimmSystem.small(mram_bytes=1024)
        a = system.alloc(10)
        b = system.alloc(10)
        assert a == 0
        assert b == 16  # aligned up from 10
        assert b % 8 == 0

    def test_alloc_exhaustion(self):
        system = DimmSystem.small(mram_bytes=64)
        system.alloc(48)
        with pytest.raises(AllocationError, match="MRAM exhausted"):
            system.alloc(32)

    def test_alloc_validates_args(self):
        system = DimmSystem.small()
        with pytest.raises(AllocationError):
            system.alloc(0)
        with pytest.raises(AllocationError):
            system.alloc(8, align=3)

    def test_reset(self):
        system = DimmSystem.small(mram_bytes=64)
        system.alloc(48)
        system.reset_allocations()
        assert system.alloc(48) == 0


class TestLazyMemories:
    def test_analytic_touches_nothing(self):
        system = DimmSystem.paper_testbed()
        assert system.touched_pes == 0

    def test_memories_materialize_on_use(self):
        system = DimmSystem.small()
        system.write_elements(3, 0, np.arange(4), INT64)
        assert system.touched_pes == 1


class TestElementAccess:
    def test_typed_roundtrip(self):
        system = DimmSystem.small()
        values = np.array([-5, 0, 7, 123456], dtype=np.int32)
        system.write_elements(1, 64, values, INT32)
        out = system.read_elements(1, 64, 4, INT32)
        assert np.array_equal(out, values)

    def test_2d_rejected(self):
        system = DimmSystem.small()
        with pytest.raises(TransferError):
            system.write_elements(0, 0, np.zeros((2, 2)), INT32)


class TestLaneAccess:
    def test_lane_roundtrip(self):
        system = DimmSystem.small()
        pes = [0, 1, 2, 3]
        rng = np.random.default_rng(0)
        mat = rng.integers(0, 256, (4, 32), dtype=np.uint8)
        system.write_lanes(pes, 16, mat)
        assert np.array_equal(system.read_lanes(pes, 16, 32), mat)

    def test_lane_rows_match_pe_order(self):
        system = DimmSystem.small()
        pes = [5, 2, 9]
        for i, pe in enumerate(pes):
            system.write_elements(pe, 0, np.full(2, i, dtype=np.int64), INT64)
        mat = system.read_lanes(pes, 0, 16)
        for i in range(3):
            assert np.array_equal(mat[i].view(np.int64), [i, i])

    def test_empty_pe_list_rejected(self):
        system = DimmSystem.small()
        with pytest.raises(TransferError):
            system.read_lanes([], 0, 8)

    def test_row_count_mismatch_rejected(self):
        system = DimmSystem.small()
        with pytest.raises(TransferError):
            system.write_lanes([0, 1], 0, np.zeros((3, 8), dtype=np.uint8))


class TestBulkHelpers:
    def test_scatter_gather_elements(self):
        system = DimmSystem.small()
        pes = [0, 4, 8]
        payloads = [np.arange(i, i + 3, dtype=np.int64) for i in pes]
        system.scatter_elements(pes, 0, payloads, INT64)
        out = system.gather_elements(pes, 0, 3, INT64)
        for got, want in zip(out, payloads):
            assert np.array_equal(got, want)

    def test_scatter_length_mismatch(self):
        system = DimmSystem.small()
        with pytest.raises(TransferError, match="payloads"):
            system.scatter_elements([0, 1], 0, [np.arange(2)], INT64)
