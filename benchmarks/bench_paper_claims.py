"""The consolidated paper-vs-measured verdict table (EXPERIMENTS.md)."""

from repro.analysis.paper_claims import evaluate_claims

from _common import run_experiment


def test_paper_claims_verdicts(benchmark):
    rows = run_experiment(
        benchmark, "paper_claims", evaluate_claims,
        "Paper claims: reported value vs this reproduction")
    strict_failures = [r for r in rows
                       if r["strict"] and not r["within_tol"]]
    assert not strict_failures
