"""Simulator micro-benchmarks: functional collective execution speed.

These are genuine performance benchmarks of the reproduction itself
(how fast the simulator moves real bytes), useful for tracking
regressions in the engine.
"""

import numpy as np

from repro import FULL, HypercubeManager, pidcomm_allreduce, pidcomm_alltoall
from repro.dtypes import INT64, SUM
from repro.hw.system import DimmSystem


def _setup(shape=(8, 4), elems_per_pe=256):
    system = DimmSystem.small(mram_bytes=1 << 18)
    manager = HypercubeManager(system, shape=shape)
    total = elems_per_pe * 8
    src = system.alloc(total)
    dst = system.alloc(total)
    rng = np.random.default_rng(0)
    for pe in manager.all_pes:
        system.write_elements(pe, src, rng.integers(0, 100, elems_per_pe),
                              INT64)
    return manager, total, src, dst


def test_functional_alltoall_speed(benchmark):
    manager, total, src, dst = _setup()
    benchmark(pidcomm_alltoall, manager, "10", total, src, dst, INT64,
              config=FULL)


def test_functional_allreduce_speed(benchmark):
    manager, total, src, dst = _setup()
    benchmark(pidcomm_allreduce, manager, "10", total, src, dst, INT64,
              SUM, config=FULL)


def test_analytic_plan_estimation_speed(benchmark):
    from repro.core.collectives import plan_allreduce
    system = DimmSystem.paper_testbed()
    manager = HypercubeManager(system, shape=(32, 32))

    def estimate():
        return plan_allreduce(manager, "10", 8 << 20, 0, 0, INT64,
                              SUM).estimate(system).total

    benchmark(estimate)
