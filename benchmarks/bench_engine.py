"""Simulator micro-benchmarks: functional collective execution speed.

These are genuine performance benchmarks of the reproduction itself
(how fast the simulator moves real bytes and how fast the engine
dispatches plans), useful for tracking regressions in the engine.
The session benchmarks quantify what the plan cache buys: a steady
state ``Communicator`` call skips group slicing, validation, and step
construction entirely.
"""

import numpy as np

from repro import (
    FULL,
    CommRequest,
    Communicator,
    HypercubeManager,
    SessionConfig,
    pidcomm_allreduce,
    pidcomm_alltoall,
)
from repro.dtypes import INT64, SUM
from repro.hw.system import DimmSystem


def _setup(shape=(8, 4), elems_per_pe=256):
    system = DimmSystem.small(mram_bytes=1 << 18)
    manager = HypercubeManager(system, shape=shape)
    total = elems_per_pe * 8
    src = system.alloc(total)
    dst = system.alloc(total)
    rng = np.random.default_rng(0)
    for pe in manager.all_pes:
        system.write_elements(pe, src, rng.integers(0, 100, elems_per_pe),
                              INT64)
    return manager, total, src, dst


def test_functional_alltoall_speed(benchmark):
    manager, total, src, dst = _setup()
    benchmark(pidcomm_alltoall, manager, "10", total, src, dst, INT64,
              config=FULL)


def test_functional_allreduce_speed(benchmark):
    manager, total, src, dst = _setup()
    benchmark(pidcomm_allreduce, manager, "10", total, src, dst, INT64,
              SUM, config=FULL)


def test_analytic_plan_estimation_speed(benchmark):
    from repro.core.collectives import plan_allreduce
    system = DimmSystem.paper_testbed()
    manager = HypercubeManager(system, shape=(32, 32))

    def estimate():
        return plan_allreduce(manager, "10", 8 << 20, 0, 0, INT64,
                              SUM).estimate(system).total

    benchmark(estimate)


def test_cached_session_allreduce_speed(benchmark):
    """Steady-state Communicator call: plan served from the cache."""
    manager, total, src, dst = _setup()
    comm = Communicator(manager)
    comm.allreduce("10", total, src_offset=src, dst_offset=dst)  # warm

    benchmark(comm.allreduce, "10", total, src_offset=src, dst_offset=dst)


def test_analytic_cached_estimation_speed(benchmark):
    """Cache-hit analytic pricing vs. test_analytic_plan_estimation_speed."""
    system = DimmSystem.paper_testbed()
    manager = HypercubeManager(system, shape=(32, 32))
    comm = Communicator(manager, SessionConfig(functional=False))
    comm.allreduce("10", 8 << 20)  # warm the cache

    benchmark(comm.allreduce, "10", 8 << 20)


def test_batch_submit_speed(benchmark):
    """Dispatch overhead of a 4-request independent batch."""
    manager, total, src, dst = _setup()
    system = manager.system
    comm = Communicator(manager, SessionConfig(functional=False))
    offsets = [(system.alloc(total), system.alloc(total)) for _ in range(4)]
    requests = [CommRequest("alltoall", "10", total, src_offset=a,
                            dst_offset=b) for a, b in offsets]

    benchmark(comm.submit, requests)
