"""Figure 19: PE-count scaling (paper: PID-Comm gains 2.36-4.20x from
64 to 1024 PEs; the baseline is host-bound and does not scale)."""

from repro.analysis import experiments as E

from _common import run_experiment


def test_fig19_pe_scaling(benchmark):
    rows = run_experiment(
        benchmark, "fig19_pe_scaling", E.fig19_pe_scaling,
        "Figure 19: throughput vs number of PEs (2 MB per PE)")
    aa = [r for r in rows if r["primitive"] == "alltoall"]
    assert aa[-1]["pidcomm_gbps"] > 2 * aa[0]["pidcomm_gbps"]
