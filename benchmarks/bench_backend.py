#!/usr/bin/env python
"""Benchmark the scalar vs. vectorized execution backends.

Runs the four dense collectives (AlltoAll, AllGather, ReduceScatter,
AllReduce) functionally on both backends across PE counts, checks the
two backends are bit-exact against each other *and* against
``repro.core.reference`` with identical cost accounting, then times
each backend on fresh systems and emits ``BENCH_backend.json`` with
ops/sec per (collective, PE count, backend) plus the speedups.

The script exits non-zero if any parity check fails or the headline
speedup falls below the regression threshold (>= 10x for the full
1024-PE AlltoAll run, >= 5x for ``--smoke``), so CI can run it as a
regression gate::

    PYTHONPATH=src python benchmarks/bench_backend.py --smoke
    PYTHONPATH=src python benchmarks/bench_backend.py   # full sweep
"""

import argparse
import json
import sys
import time

import numpy as np

from repro import Communicator, DimmGeometry, DimmSystem, HypercubeManager
from repro.core import reference as ref
from repro.core.groups import slice_groups
from repro.dtypes import INT64, SUM

MRAM_BYTES = 1 << 15
ELEM = INT64.itemsize  # one int64 per peer slot (chunk_bytes = 8)

GEOMETRIES = {
    64: DimmGeometry(1, 1, 8, 8),
    256: DimmGeometry(2, 2, 8, 8),
    1024: DimmGeometry(4, 4, 8, 8),
}

#: collective -> (total bytes per PE, output elems per PE, needs reduce op)
SPECS = {
    "alltoall": (lambda n: n * ELEM, lambda n: n, False),
    "allgather": (lambda n: ELEM, lambda n: n, False),
    "reduce_scatter": (lambda n: n * ELEM, lambda n: 1, True),
    "allreduce": (lambda n: n * ELEM, lambda n: n, True),
}

REFERENCE = {
    "alltoall": lambda vecs: ref.alltoall(vecs),
    "allgather": lambda vecs: ref.allgather(vecs),
    "reduce_scatter": lambda vecs: ref.reduce_scatter(vecs, SUM),
    "allreduce": lambda vecs: ref.allreduce(vecs, SUM),
}


def setup(npes, backend, seed):
    """Fresh system + communicator + seeded inputs for one run."""
    system = DimmSystem(GEOMETRIES[npes], mram_bytes=MRAM_BYTES,
                        backend=backend)
    manager = HypercubeManager(system, shape=(npes,))
    comm = Communicator(manager)
    pe_ids = slice_groups(manager, "1")[0].pe_ids
    return system, comm, pe_ids


def fill_inputs(system, pe_ids, nbytes, seed):
    """Seeded per-PE int64 inputs at offset 0; returns them rank-ordered."""
    rng = np.random.default_rng(seed)
    values = rng.integers(-99, 100, (len(pe_ids), nbytes // ELEM),
                          dtype=np.int64)
    system.scatter_elements(pe_ids, 0, list(values), INT64)
    return values


def invoke(comm, collective, npes):
    """One functional collective; src at 0, dst right after it."""
    total_fn, _, needs_op = SPECS[collective]
    total = total_fn(npes)
    kwargs = {"reduction_type": SUM} if needs_op else {}
    return getattr(comm, collective)(
        "1", total, src_offset=0, dst_offset=total, data_type=INT64,
        **kwargs)


def check_parity(collective, npes, seed=11):
    """Both backends, same inputs: outputs, costs, and reference agree."""
    total_fn, out_fn, _ = SPECS[collective]
    total, out_elems = total_fn(npes), out_fn(npes)
    runs = {}
    for backend in ("scalar", "vectorized"):
        system, comm, pe_ids = setup(npes, backend, seed)
        inputs = fill_inputs(system, pe_ids, total, seed)
        result = invoke(comm, collective, npes)
        outputs = np.stack(system.gather_elements(pe_ids, total, out_elems,
                                                  INT64))
        runs[backend] = (inputs, outputs, result)
    inputs, scalar_out, scalar_res = runs["scalar"]
    _, vector_out, vector_res = runs["vectorized"]
    label = f"{collective}@{npes}"
    if not np.array_equal(scalar_out, vector_out):
        raise SystemExit(f"PARITY FAIL {label}: backends disagree")
    want = np.stack(REFERENCE[collective](list(inputs)))
    if not np.array_equal(vector_out.reshape(want.shape), want):
        raise SystemExit(f"PARITY FAIL {label}: reference mismatch")
    if scalar_res.ledger.breakdown() != vector_res.ledger.breakdown():
        raise SystemExit(f"PARITY FAIL {label}: cost ledgers differ")
    if scalar_res.simd != vector_res.simd:
        raise SystemExit(f"PARITY FAIL {label}: SIMD counters differ")
    if scalar_res.wram_tiles != vector_res.wram_tiles:
        raise SystemExit(f"PARITY FAIL {label}: WRAM tile counts differ")


def time_backend(collective, npes, backend, iters, seed=5):
    """Mean seconds per functional collective (after one warmup run)."""
    system, comm, pe_ids = setup(npes, backend, seed)
    total_fn, _, _ = SPECS[collective]
    fill_inputs(system, pe_ids, total_fn(npes), seed)
    invoke(comm, collective, npes)  # warm the plan cache + op caches
    start = time.perf_counter()
    for _ in range(iters):
        invoke(comm, collective, npes)
    return (time.perf_counter() - start) / iters


def scalar_iters(npes):
    """Fewer timed scalar iterations at scale; it is the slow baseline."""
    return {64: 3, 256: 2}.get(npes, 1)


def main(argv=None):
    """Parse args, run the sweep, write the JSON report, gate thresholds."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep for CI (256 PEs, 2 "
                             "collectives, >=5x gate)")
    parser.add_argument("--out", default="BENCH_backend.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    if args.smoke:
        pe_counts = (256,)
        collectives = ("alltoall", "allreduce")
        headline, threshold = "alltoall@256", 5.0
    else:
        pe_counts = (64, 256, 1024)
        collectives = tuple(SPECS)
        headline, threshold = "alltoall@1024", 10.0

    results = []
    speedups = {}
    for npes in pe_counts:
        for collective in collectives:
            label = f"{collective}@{npes}"
            print(f"[parity] {label} ...", flush=True)
            check_parity(collective, npes)
            timings = {}
            for backend in ("scalar", "vectorized"):
                iters = (scalar_iters(npes) if backend == "scalar"
                         else 5)
                seconds = time_backend(collective, npes, backend, iters)
                timings[backend] = seconds
                results.append({
                    "collective": collective, "npes": npes,
                    "backend": backend, "iters": iters,
                    "seconds_per_op": seconds,
                    "ops_per_sec": 1.0 / seconds,
                })
            speedups[label] = timings["scalar"] / timings["vectorized"]
            print(f"[timing] {label}: scalar {timings['scalar']:.4f}s, "
                  f"vectorized {timings['vectorized']:.4f}s "
                  f"({speedups[label]:.1f}x)", flush=True)

    report = {
        "mode": "smoke" if args.smoke else "full",
        "dtype": "int64", "chunk_bytes": ELEM,
        "parity": "bit-exact (outputs, ledger, simd, wram_tiles)",
        "headline": {"case": headline, "threshold": threshold,
                     "speedup": speedups[headline]},
        "speedups": speedups,
        "results": results,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if speedups[headline] < threshold:
        print(f"REGRESSION: {headline} speedup {speedups[headline]:.1f}x "
              f"< {threshold:.0f}x", file=sys.stderr)
        return 1
    print(f"OK: {headline} speedup {speedups[headline]:.1f}x "
          f">= {threshold:.0f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
