"""Figure 17: execution-time breakdown of the optimized primitives.

Paper: in-register modulation removes host-memory access entirely;
cross-domain modulation removes domain transfer for AlltoAll/AllGather;
PE-assisted reordering adds only ~4.5% overhead.
"""

from repro.analysis import experiments as E

from _common import run_experiment


def test_fig17_category_breakdown(benchmark):
    rows = run_experiment(
        benchmark, "fig17_breakdown", E.fig17_breakdown,
        "Figure 17: per-category seconds at 32x32, 8 MB/PE")
    im = [r for r in rows if r["config"] == "+IM"]
    assert all(r["host_mem"] == 0 for r in im)
