"""Figure 21: comparison to the CPU-only system.

Paper: PIM baseline 2.27x geomean over CPU, PID-Comm 4.07x; MLP peaks
at 7.89x with 1024 PEs; CC's sweet spot is 64 PEs at 2.58x.
"""

from repro.analysis import experiments as E

from _common import run_experiment


def test_fig21_cpu_comparison(benchmark):
    rows = run_experiment(
        benchmark, "fig21_cpu_comparison", E.fig21_cpu_comparison,
        "Figure 21: speedup over CPU-only vs number of PEs")
    mlp = {r["pes"]: r["pidcomm_x"] for r in rows if r["app"] == "MLP"}
    assert mlp[1024] == max(mlp.values())
