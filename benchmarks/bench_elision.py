#!/usr/bin/env python
"""Benchmark content-aware transfer elision on sparse vs. dense traffic.

Runs a large functional AlltoAll with the session engine in
``execution="compiled"`` mode on the vectorized backend, with
``elide_transfers`` off and on, over two payload contents:

* **sparse** -- MoE-style structured sparsity: the same 75% of
  per-destination blocks are zero on every PE (globally cold experts),
  so whole destination rows are all-zero and the eliding replay skips
  their gather and write entirely.  Gate: elide-on must be >= 1.5x
  faster wall-clock than elide-off on the same payload.
* **dense** -- every block nonzero, nothing elidable: the scan runs
  and finds no savings.  Gate: elide-on may cost at most 5% over
  elide-off (the dense-traffic guardrail; sessions that leave
  ``elide_transfers`` off pay exactly nothing, which
  ``tests/test_elision.py`` asserts separately).

Before timing, the eliding replay is checked bit-exact against the
*scalar interpreted* oracle at a moderate size and against the
non-eliding compiled replay at the full gate size -- elision changes
the work performed, never the answer.  Timing measures the steady
state: plan, program, and gather tables are built on a warmup call.

The script exits non-zero if any parity check fails or either gate
misses::

    PYTHONPATH=src python benchmarks/bench_elision.py --smoke
    PYTHONPATH=src python benchmarks/bench_elision.py   # full gate
"""

import argparse
import gc
import json
import sys
import time

import numpy as np

from repro import (Communicator, DimmGeometry, DimmSystem, HypercubeManager,
                   SessionConfig)
from repro.core.groups import slice_groups
from repro.dtypes import INT64

GEOMETRIES = {
    256: DimmGeometry(2, 2, 8, 8),
    1024: DimmGeometry(4, 4, 8, 8),
}

#: mode -> gate workload.  ``per_pe`` bytes of AlltoAll payload per PE.
MODES = {
    "full": {"npes": 1024, "per_pe": 1 << 16, "mram": 1 << 18,
             "iters": 6, "repeats": 6, "sparsity": 0.75,
             "sparse_gate": 1.5, "dense_gate": 1.05},
    "smoke": {"npes": 256, "per_pe": 1 << 14, "mram": 1 << 16,
              "iters": 8, "repeats": 10, "sparsity": 0.75,
              "sparse_gate": 1.5, "dense_gate": 1.05},
}

#: parity workload (scalar interpreted oracle; kept moderate because
#: the oracle loops PEs in Python).
PARITY = {"npes": 256, "per_pe": 1 << 12, "mram": 1 << 14}


def payload_values(npes, per_pe, sparsity, seed=11):
    """The (npes, elems) int64 inputs; ``sparsity`` of the
    per-destination blocks are zeroed on *every* PE (globally cold),
    the structure whole-row elision needs."""
    rng = np.random.default_rng(seed)
    elems = per_pe // INT64.itemsize
    values = rng.integers(1, 100, (npes, elems), dtype=np.int64)
    if sparsity:
        blocks = values.reshape(npes, npes, -1)
        cold = rng.choice(npes, round(npes * sparsity), replace=False)
        blocks[:, cold, :] = 0
    return values


def setup(npes, per_pe, mram, backend, execution, *, elide, sparsity):
    """Fresh system + communicator + seeded inputs for one run."""
    system = DimmSystem(GEOMETRIES[npes], mram_bytes=mram, backend=backend)
    manager = HypercubeManager(system, shape=(npes,))
    comm = Communicator(manager, SessionConfig(
        execution=execution, elide_transfers=elide))
    pe_ids = slice_groups(manager, "1")[0].pe_ids
    values = payload_values(npes, per_pe, sparsity)
    system.scatter_elements(pe_ids, 0, list(values), INT64)
    return system, comm, pe_ids


def invoke(comm, per_pe):
    """One functional AlltoAll; src at 0, dst right after it."""
    return comm.alltoall("1", per_pe, src_offset=0, dst_offset=per_pe,
                         data_type=INT64)


def outputs_of(system, pe_ids, per_pe):
    return np.stack(system.gather_elements(
        pe_ids, per_pe, per_pe // INT64.itemsize, INT64))


def check_oracle_parity(sparsity):
    """Eliding replay vs. the scalar interpreted oracle, bit-exact."""
    outs = {}
    for mode, backend, execution, elide in (
            ("oracle", "scalar", "interpreted", False),
            ("eliding", "vectorized", "compiled", True)):
        system, comm, pe_ids = setup(
            PARITY["npes"], PARITY["per_pe"], PARITY["mram"], backend,
            execution, elide=elide, sparsity=sparsity)
        result = invoke(comm, PARITY["per_pe"])
        outs[mode] = outputs_of(system, pe_ids, PARITY["per_pe"])
    if result.chunks_elided <= 0:
        raise SystemExit(
            f"PARITY FAIL: elision did not engage at parity size "
            f"(scanned {result.chunks_scanned}, elided 0)")
    if not np.array_equal(outs["oracle"], outs["eliding"]):
        raise SystemExit("PARITY FAIL: eliding outputs diverge from the "
                         "scalar interpreted oracle")


def check_compiled_parity(spec, sparsity):
    """Eliding vs. non-eliding compiled replay at the full gate size."""
    outs = {}
    for mode, elide in (("plain", False), ("eliding", True)):
        system, comm, pe_ids = setup(
            spec["npes"], spec["per_pe"], spec["mram"], "vectorized",
            "compiled", elide=elide, sparsity=sparsity)
        result = invoke(comm, spec["per_pe"])
        outs[mode] = outputs_of(system, pe_ids, spec["per_pe"])
    if result.chunks_elided <= 0:
        raise SystemExit("PARITY FAIL: elision did not engage at gate size")
    if not np.array_equal(outs["plain"], outs["eliding"]):
        raise SystemExit("PARITY FAIL: eliding gate-size outputs diverge "
                         "from the non-eliding compiled replay")


def time_replay_pair(spec, *, sparsity):
    """Steady-state seconds per op for elide off and on, one payload.

    Both sessions are set up and warmed first, then timed in
    alternating rounds (off, on, off, on, ...) taking the best round
    each -- machine-load drift between rounds hits both sides equally
    instead of biasing whichever config happened to run later.
    Returns ``(off_seconds, on_seconds, on_result)``.
    """
    comms = {}
    for elide in (False, True):
        system, comm, pe_ids = setup(
            spec["npes"], spec["per_pe"], spec["mram"], "vectorized",
            "compiled", elide=elide, sparsity=sparsity)
        invoke(comm, spec["per_pe"])  # warm caches, tables, buffers
        comms[elide] = comm
    gc.collect()
    best = {False: float("inf"), True: float("inf")}
    for _ in range(spec["repeats"]):
        for elide in (False, True):
            start = time.perf_counter()
            for _ in range(spec["iters"]):
                result = invoke(comms[elide], spec["per_pe"])
            best[elide] = min(
                best[elide], (time.perf_counter() - start) / spec["iters"])
    return best[False], best[True], result


def main(argv=None):
    """Parse args, check parity, time both gates, write the report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI (256 PEs, 4 MiB "
                             "payload, same gates)")
    parser.add_argument("--out", default="BENCH_elision.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    spec = MODES[mode]
    payload = spec["npes"] * spec["per_pe"]

    print("[parity] eliding vs scalar interpreted oracle ...", flush=True)
    check_oracle_parity(spec["sparsity"])
    print("[parity] eliding vs plain compiled at gate size ...", flush=True)
    check_compiled_parity(spec, spec["sparsity"])

    rows = {}
    for content, sparsity in (("sparse", spec["sparsity"]), ("dense", 0.0)):
        off_s, on_s, result = time_replay_pair(spec, sparsity=sparsity)
        rows[content] = {
            "sparsity": sparsity,
            "elide_off_seconds_per_op": off_s,
            "elide_on_seconds_per_op": on_s,
            "speedup": off_s / on_s,
            "chunks_scanned": result.chunks_scanned,
            "chunks_elided": result.chunks_elided,
            "elided_bytes": result.elided_bytes,
            "modelled_elide_seconds": result.ledger.get("elide"),
        }
        print(f"[timing] {content}: off {off_s * 1e3:.3f}ms, "
              f"on {on_s * 1e3:.3f}ms ({off_s / on_s:.2f}x, "
              f"{result.chunks_elided}/{result.chunks_scanned} chunks "
              f"elided)", flush=True)

    sparse_speedup = rows["sparse"]["speedup"]
    dense_overhead = 1.0 / rows["dense"]["speedup"]
    report = {
        "mode": mode,
        "workload": {"collective": "alltoall", "npes": spec["npes"],
                     "payload_bytes": payload, "dtype": "int64",
                     "backend": "vectorized",
                     "sparsity": spec["sparsity"]},
        "parity": "bit-exact vs scalar interpreted oracle and vs "
                  "non-eliding compiled replay at gate size",
        "gates": {"min_sparse_speedup": spec["sparse_gate"],
                  "max_dense_overhead": spec["dense_gate"]},
        "headline": {"sparse_speedup": sparse_speedup,
                     "dense_overhead": dense_overhead,
                     "chunks_elided": rows["sparse"]["chunks_elided"]},
        "results": rows,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    failures = []
    if sparse_speedup < spec["sparse_gate"]:
        failures.append(
            f"sparse eliding speedup {sparse_speedup:.2f}x < "
            f"{spec['sparse_gate']:.1f}x")
    if dense_overhead > spec["dense_gate"]:
        failures.append(
            f"dense scan overhead {dense_overhead:.3f}x > "
            f"{spec['dense_gate']:.2f}x")
    if rows["dense"]["chunks_elided"] != 0:
        failures.append("dense payload elided chunks; fingerprinting is "
                        "misclassifying nonzero content")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"OK: sparse {sparse_speedup:.2f}x >= {spec['sparse_gate']:.1f}x, "
          f"dense overhead {dense_overhead:.3f}x <= "
          f"{spec['dense_gate']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
