#!/usr/bin/env python
"""Benchmark autotuned schedules vs. hand-picked and naive schedules.

Runs three functional collective mixes (AlltoAll, AllReduce, AllGather)
through three arms:

* **naive** -- a plain ``Communicator(manager)`` on the system default
  backend: the untuned default schedule (scalar backend, untiled
  compiled replay, FULL rung).
* **hand** -- a grid of pinned ``SessionConfig``\\ s over the same
  candidate lattice the tuner searches (vectorized compiled replay,
  untiled plus the payload-fraction streaming tiles); the best
  wall-clock entry is what a careful human would pick.
* **tuned** -- ``SessionConfig(autotune="online")``: the cost model
  prunes the schedule space, live replay measurements pick the tile,
  and the committed decision is replayed from the plan cache's
  decision store.  Timed in the steady state, after the tuner commits.

Before timing, each mix's tuned schedule is checked bit-exact against
the scalar interpreted oracle (same seeded inputs, oracle pinned to the
tuned rung), so tuning can never trade correctness for speed.

The script exits non-zero if any parity check fails, if the tuned arm
falls outside ``tuned_within`` of the best hand-picked arm on any mix
(full: 1.05x), or if the tuned arm beats the naive default by less than
``naive_gate`` on every mix (full: >= 1.5x on at least one mix)::

    PYTHONPATH=src python benchmarks/bench_autotune.py --smoke
    PYTHONPATH=src python benchmarks/bench_autotune.py   # full gate
"""

import argparse
import json
import sys
import time

import numpy as np

from repro import (Communicator, DimmGeometry, DimmSystem, HypercubeManager,
                   SessionConfig)
from repro.core.groups import slice_groups
from repro.dtypes import INT64, SUM

ELEM = INT64.itemsize

GEOMETRIES = {
    256: DimmGeometry(2, 2, 8, 8),
    1024: DimmGeometry(4, 4, 8, 8),
}

#: mix -> (per-PE input bytes, output elems per PE, needs reduce op),
#: parameterized by (npes, scale).  ``scale`` is elements per peer slot
#: (AlltoAll / AllReduce) or per contribution (AllGather).
MIXES = {
    "alltoall": (lambda n, s: n * s * ELEM, lambda n, s: n * s, False),
    "allreduce": (lambda n, s: n * s * ELEM, lambda n, s: n * s, True),
    "allgather": (lambda n, s: s * ELEM, lambda n, s: n * s, False),
}

#: Fractions of the gathered footprint offered as hand-picked streaming
#: tiles -- the same lattice ``repro.analysis.autotune`` searches.
TILE_FRACTIONS = (4, 8, 16)
MIN_TILE_BYTES = 4096

MODES = {
    "full": {"npes": 1024, "scale": 8, "mram": 1 << 18, "iters": 6,
             "naive_iters": 1, "tuned_within": 1.05, "naive_gate": 1.5},
    "smoke": {"npes": 256, "scale": 8, "mram": 1 << 16, "iters": 8,
              "naive_iters": 2, "tuned_within": 1.25, "naive_gate": 1.2},
}

#: parity workload (scalar interpreted oracle; kept moderate because
#: the oracle loops PEs in Python).
PARITY = {"npes": 256, "scale": 2, "mram": 1 << 14}

#: Warmup-call cap while waiting for the online tuner to commit.
WARMUP_CAP = 64


def setup(npes, mram, session, backend="scalar"):
    """Fresh system + communicator for one arm."""
    system = DimmSystem(GEOMETRIES[npes], mram_bytes=mram, backend=backend)
    manager = HypercubeManager(system, shape=(npes,))
    comm = Communicator(manager, session)
    pe_ids = slice_groups(manager, "1")[0].pe_ids
    return system, comm, pe_ids


def fill_inputs(system, pe_ids, nbytes, seed):
    """Seeded per-PE int64 inputs at offset 0; returns them rank-ordered."""
    rng = np.random.default_rng(seed)
    values = rng.integers(-99, 100, (len(pe_ids), nbytes // ELEM),
                          dtype=np.int64)
    system.scatter_elements(pe_ids, 0, list(values), INT64)
    return values


def invoke(comm, mix, npes, scale):
    """One functional collective; src at 0, dst right after it."""
    in_fn, _, needs_op = MIXES[mix]
    nbytes = in_fn(npes, scale)
    kwargs = {"reduction_type": SUM} if needs_op else {}
    return getattr(comm, mix)("1", nbytes, src_offset=0, dst_offset=nbytes,
                              data_type=INT64, **kwargs)


def outputs_of(system, pe_ids, mix, npes, scale):
    in_fn, out_fn, _ = MIXES[mix]
    return np.stack(system.gather_elements(
        pe_ids, in_fn(npes, scale), out_fn(npes, scale), INT64))


def hand_tiles(mix, npes, scale):
    """The hand grid's streaming-tile axis for one mix."""
    _, out_fn, _ = MIXES[mix]
    footprint = npes * out_fn(npes, scale) * ELEM
    tiles = [None]
    for fraction in TILE_FRACTIONS:
        tile = footprint // fraction
        if tile >= MIN_TILE_BYTES and tile not in tiles:
            tiles.append(tile)
    return tiles


def check_oracle_parity(mix, seed=11):
    """Tuned replay vs. the scalar interpreted oracle, bit-exact.

    AllReduce/ReduceScatter permute their source in-place and the
    permutation is rung-dependent, so the oracle gets fresh identical
    inputs and is pinned to the rung the tuner chose.
    """
    npes, scale, mram = PARITY["npes"], PARITY["scale"], PARITY["mram"]
    system, comm, pe_ids = setup(
        npes, mram, SessionConfig(autotune="offline"))
    fill_inputs(system, pe_ids, MIXES[mix][0](npes, scale), seed)
    result = invoke(comm, mix, npes, scale)
    if result.schedule is None:
        raise SystemExit(f"PARITY FAIL {mix}: tuner attached no schedule")
    tuned_out = outputs_of(system, pe_ids, mix, npes, scale)

    oracle_sys, oracle_comm, oracle_pes = setup(
        npes, mram, SessionConfig(execution="interpreted",
                                  config=result.schedule.rung))
    fill_inputs(oracle_sys, oracle_pes, MIXES[mix][0](npes, scale), seed)
    oracle_res = invoke(oracle_comm, mix, npes, scale)
    oracle_out = outputs_of(oracle_sys, oracle_pes, mix, npes, scale)
    if not np.array_equal(tuned_out, oracle_out):
        raise SystemExit(f"PARITY FAIL {mix}: tuned outputs diverge from "
                         f"the scalar interpreted oracle")
    if result.simd != oracle_res.simd:
        raise SystemExit(f"PARITY FAIL {mix}: SIMD counters differ")
    return result.schedule


def time_arm(mix, spec, session, iters, backend="scalar", warm_tuner=False):
    """Mean steady-state seconds per op; returns (secs, comm, result)."""
    npes, scale = spec["npes"], spec["scale"]
    system, comm, pe_ids = setup(npes, spec["mram"], session,
                                 backend=backend)
    fill_inputs(system, pe_ids, MIXES[mix][0](npes, scale), seed=5)
    result = invoke(comm, mix, npes, scale)  # warm plans + caches
    if warm_tuner:
        for _ in range(WARMUP_CAP):
            if comm.stats.tuner_cache_hits > 0:
                break
            result = invoke(comm, mix, npes, scale)
        else:
            raise SystemExit(f"TUNER FAIL {mix}: no decision committed "
                             f"after {WARMUP_CAP} warmup calls")
    start = time.perf_counter()
    for _ in range(iters):
        result = invoke(comm, mix, npes, scale)
    return (time.perf_counter() - start) / iters, comm, result


def main(argv=None):
    """Parse args, check parity, time the arms, write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI (256 PEs, looser "
                             "gates)")
    parser.add_argument("--out", default="BENCH_autotune.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    spec = MODES[mode]
    npes, scale = spec["npes"], spec["scale"]

    results = []
    failures = []
    best_naive_ratio = 0.0
    for mix in MIXES:
        print(f"[parity] {mix}: tuned vs scalar interpreted oracle ...",
              flush=True)
        tuned_schedule = check_oracle_parity(mix)

        naive_s, _, _ = time_arm(mix, spec, SessionConfig(),
                                 spec["naive_iters"])
        hand = []
        for tile in hand_tiles(mix, npes, scale):
            hand_s, _, _ = time_arm(
                mix, spec,
                SessionConfig(backend="vectorized", execution="compiled",
                              stream_tile_bytes=tile),
                spec["iters"], backend="vectorized")
            hand.append({"tile_bytes": tile, "seconds_per_op": hand_s})
        best_hand = min(hand, key=lambda h: h["seconds_per_op"])

        tuned_s, comm, result = time_arm(
            mix, spec, SessionConfig(autotune="online"), spec["iters"],
            warm_tuner=True)
        snapshot = comm.stats.snapshot()

        vs_hand = tuned_s / best_hand["seconds_per_op"]
        vs_naive = naive_s / tuned_s
        best_naive_ratio = max(best_naive_ratio, vs_naive)
        entry = {
            "mix": mix,
            "payload_bytes": npes * MIXES[mix][0](npes, scale),
            "naive_seconds_per_op": naive_s,
            "hand_grid": hand,
            "best_hand_seconds_per_op": best_hand["seconds_per_op"],
            "tuned_seconds_per_op": tuned_s,
            "tuned_schedule": result.schedule.describe()
            if result.schedule else tuned_schedule.describe(),
            "tuned_vs_best_hand": vs_hand,
            "speedup_vs_naive": vs_naive,
            "tuner": {k: snapshot[k] for k in (
                "tuner_searches", "tuner_probes", "tuner_observations",
                "tuner_cache_hits", "tuner_retunes")},
        }
        results.append(entry)
        print(f"[timing] {mix}: naive {naive_s * 1e3:.3f}ms, best hand "
              f"{best_hand['seconds_per_op'] * 1e3:.3f}ms, tuned "
              f"{tuned_s * 1e3:.3f}ms ({vs_hand:.3f}x of hand, "
              f"{vs_naive:.2f}x over naive)", flush=True)
        if vs_hand > spec["tuned_within"]:
            failures.append(
                f"{mix}: tuned {vs_hand:.3f}x of best hand-picked exceeds "
                f"{spec['tuned_within']:.2f}x")
    if best_naive_ratio < spec["naive_gate"]:
        failures.append(
            f"tuned best speedup over naive {best_naive_ratio:.2f}x < "
            f"{spec['naive_gate']:.1f}x on every mix")

    report = {
        "mode": mode,
        "workload": {"npes": npes, "scale": scale, "dtype": "int64",
                     "mixes": list(MIXES)},
        "parity": "bit-exact vs scalar interpreted oracle at the tuned "
                  "rung (outputs, simd), fresh inputs per arm",
        "gates": {"tuned_within_best_hand": spec["tuned_within"],
                  "min_speedup_vs_naive_any_mix": spec["naive_gate"]},
        "headline": {"best_speedup_vs_naive": best_naive_ratio},
        "results": results,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"OK: tuned within {spec['tuned_within']:.2f}x of best "
          f"hand-picked on every mix, {best_naive_ratio:.2f}x over the "
          f"naive default at best")
    return 0


if __name__ == "__main__":
    sys.exit(main())
