"""Figure 24 / section IX extensions: other PIM architectures + DSA.

The paper sketches (without measuring) how PID-Comm adapts to HBM-PIM
(no domain transfer), AxDIMM and CXL-NMP (partial local media handled
hierarchically), and how a future DSA could offload the host data path.
These benches regenerate the modelled comparison.
"""

from repro.core.collectives import FULL, plan_allreduce, plan_alltoall
from repro.core.hypercube import HypercubeManager
from repro.dtypes import INT64, SUM
from repro.hw.system import DimmSystem
from repro.variants import (
    ARCHITECTURE_PROFILES,
    dsa_offload_params,
    variant_allreduce,
    variant_alltoall,
)

from _common import run_experiment


def _variant_rows():
    rows = []
    for name in ARCHITECTURE_PROFILES:
        ar = variant_allreduce(name)
        aa = variant_alltoall(name)
        rows.append({
            "architecture": ar["architecture"],
            "host_units": ar["host_visible_units"],
            "allreduce_s": ar["total_s"],
            "alltoall_s": aa["total_s"],
            "dt_share": (ar["dt_s"] / ar["total_s"]) if ar["total_s"] else 0,
        })
    return rows


def test_fig24_architecture_variants(benchmark):
    rows = run_experiment(
        benchmark, "fig24_variants", _variant_rows,
        "Section IX-A: PID-Comm AllReduce/AlltoAll on PIM variants "
        "(1024 PEs, 1 MB per PE)")
    by = {r["architecture"]: r for r in rows}
    assert by["HBM-PIM"]["dt_share"] < 0.01
    assert by["AxDIMM"]["allreduce_s"] < by["UPMEM"]["allreduce_s"]


def _dsa_rows():
    size = 8 << 20
    rows = []
    for label, params in (("host CPU", None),
                          ("DSA offload", dsa_offload_params())):
        system = DimmSystem.paper_testbed(params=params)
        manager = HypercubeManager(system, shape=(32, 32))
        ar = plan_allreduce(manager, "10", size, 0, 0, INT64, SUM,
                            FULL).estimate(system).total
        aa = plan_alltoall(manager, "10", size, 0, 0, INT64,
                           FULL).estimate(system).total
        rows.append({"data path": label, "allreduce_s": ar,
                     "alltoall_s": aa})
    return rows


def test_dsa_offload_whatif(benchmark):
    rows = run_experiment(
        benchmark, "dsa_offload", _dsa_rows,
        "Section IX-B: what-if a future DSA ran the host data path")
    assert rows[1]["allreduce_s"] < rows[0]["allreduce_s"]
