"""Make the benchmark helpers importable when pytest runs from the root."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
