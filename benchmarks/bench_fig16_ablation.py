"""Figure 16: ablation of the three optimization techniques.

Paper (geomean steps): PE-assisted reordering 1.48x, +in-register
modulation 2.03x, +cross-domain modulation 1.42x (non-arithmetic
primitives only).
"""

from repro.analysis import experiments as E
from repro.analysis.report import render_dict_rows

from _common import run_experiment


def test_fig16_technique_ablation(benchmark):
    rows = run_experiment(
        benchmark, "fig16_ablation", E.fig16_ablation,
        "Figure 16: throughput ladder (GB/s) Baseline -> +PR -> +IM -> +CM",
        postprocess=lambda rows: render_dict_rows(
            E.fig16_step_geomeans(rows),
            "Technique step geomeans (paper: PR 1.48x, IM 2.03x, CM 1.42x)"))
    for row in rows:
        assert row["+CM"] >= row["Baseline"]
