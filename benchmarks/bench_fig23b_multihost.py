"""Figure 23b: multi-host PID-Comm over 10 Gbps MPI.

Paper: AllReduce ships 1/256th of the data (reduced first) so its MPI
overhead is small; AlltoAll pays the full (N-1)/N crossing share, which
grows with the host count.
"""

from repro.analysis import experiments as E

from _common import run_experiment


def test_fig23b_multihost(benchmark):
    rows = run_experiment(
        benchmark, "fig23b_multihost", E.fig23b_multihost,
        "Figure 23b: 1-4 hosts x 256 PEs, 2 MB per PE")
    four = [r for r in rows if r["hosts"] == 4][0]
    assert four["alltoall_mpi_s"] > four["allreduce_mpi_s"]
