#!/usr/bin/env python
"""Benchmark parallel replay: worker-pool waves vs. the serial engine.

Submits a batch of hazard-independent AlltoAlls (disjoint MRAM
regions, so the scheduler forms one wide wave) through sessions with
``parallel_workers`` in {1, 2, 4} and times the steady-state batch
replay on the vectorized backend, compiled + streamed.  Before timing,
the pooled session is checked bit-exact against the *scalar
interpreted* serial oracle at a moderate size (outputs, SIMD counters,
WRAM tiles), and worker-count invariance is checked at the gate size:
outputs, CostLedger totals and tile counts must be identical at every
worker count -- parallelism changes wall-clock only.

The wall-clock gate is core-aware: threads cannot beat serial replay
without cores to run on, so the speedup threshold (>= 2x at 4 workers
for the full 1024-PE / 64 MiB run, >= 1.3x at 2 workers for
``--smoke``) is enforced only when the host has at least as many CPUs
as gate workers.  On smaller hosts the parity and invariance checks
still gate; the speedup is recorded in the report with
``"gate": "skipped (N cores)"`` and the script exits 0::

    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py   # full gate
"""

import argparse
import json
import os
import sys
import time

import numpy as np

from repro import (Communicator, CommRequest, DimmGeometry, DimmSystem,
                   HypercubeManager, SessionConfig)
from repro.core.groups import slice_groups
from repro.dtypes import INT64

GEOMETRIES = {
    256: DimmGeometry(2, 2, 8, 8),
    1024: DimmGeometry(4, 4, 8, 8),
}

#: mode -> gate workload.  ``batch`` hazard-independent AlltoAlls of
#: ``per_pe`` bytes each (full: 4 x 1024 PEs x 16 KiB = 64 MiB of
#: payload per submit, the ISSUE's acceptance case).
MODES = {
    "full": {"npes": 1024, "per_pe": 1 << 14, "mram": 1 << 18,
             "batch": 4, "tile": 4 << 20, "workers": (1, 2, 4),
             "gate_workers": 4, "threshold": 2.0, "iters": 4},
    "smoke": {"npes": 256, "per_pe": 1 << 14, "mram": 1 << 18,
              "batch": 4, "tile": 1 << 20, "workers": (1, 2),
              "gate_workers": 2, "threshold": 1.3, "iters": 8},
}

#: parity workload (scalar interpreted oracle; kept moderate because
#: the oracle loops PEs in Python).
PARITY = {"npes": 256, "per_pe": 1 << 12, "mram": 1 << 15, "batch": 3}


def batch_requests(per_pe, batch):
    """``batch`` AlltoAlls over disjoint src/dst slots: one wide wave."""
    return [CommRequest("alltoall", "1", per_pe, src_offset=i * 2 * per_pe,
                        dst_offset=i * 2 * per_pe + per_pe,
                        data_type=INT64)
            for i in range(batch)]


def setup(spec, backend, execution, tile, workers):
    """Fresh system + session + seeded inputs for every batch member."""
    system = DimmSystem(GEOMETRIES[spec["npes"]], mram_bytes=spec["mram"],
                        backend=backend)
    manager = HypercubeManager(system, shape=(spec["npes"],))
    comm = Communicator(manager, SessionConfig(
        execution=execution, stream_tile_bytes=tile,
        parallel_workers=workers))
    pe_ids = slice_groups(manager, "1")[0].pe_ids
    rng = np.random.default_rng(11)
    elems = spec["per_pe"] // INT64.itemsize
    for i in range(spec["batch"]):
        values = rng.integers(-99, 100, (spec["npes"], elems),
                              dtype=np.int64)
        system.scatter_elements(pe_ids, i * 2 * spec["per_pe"],
                                list(values), INT64)
    return system, comm, pe_ids


def submit(comm, spec):
    """One batch of disjoint AlltoAlls; returns the member results."""
    batch = comm.submit(batch_requests(spec["per_pe"], spec["batch"]))
    return [future.result() for future in batch.futures]


def outputs_of(system, pe_ids, spec):
    """Every member's dst region, stacked (member, pe, element)."""
    elems = spec["per_pe"] // INT64.itemsize
    return np.stack([
        np.stack(system.gather_elements(
            pe_ids, i * 2 * spec["per_pe"] + spec["per_pe"], elems, INT64))
        for i in range(spec["batch"])])


def check_oracle_parity(tile, workers):
    """Pooled streamed batch vs. the serial scalar interpreted oracle."""
    runs = {}
    for mode, backend, execution, t, w in (
            ("oracle", "scalar", "interpreted", None, 1),
            ("pooled", "vectorized", "compiled", tile, workers)):
        system, comm, pe_ids = setup(PARITY, backend, execution, t, w)
        results = submit(comm, PARITY)
        runs[mode] = (outputs_of(system, pe_ids, PARITY), results, comm)
        comm.close()
    oracle_out, oracle_res, _ = runs["oracle"]
    pooled_out, pooled_res, pooled_comm = runs["pooled"]
    if any(r.execution != "streamed" for r in pooled_res):
        raise SystemExit("PARITY FAIL: streaming did not engage")
    if pooled_comm.stats.parallel_waves < 1:
        raise SystemExit("PARITY FAIL: the pooled session never formed a "
                         "parallel wave (batch not hazard-independent?)")
    if not np.array_equal(oracle_out, pooled_out):
        raise SystemExit("PARITY FAIL: pooled outputs diverge from the "
                         "scalar interpreted oracle")
    for a, b in zip(oracle_res, pooled_res):
        if a.simd != b.simd:
            raise SystemExit("PARITY FAIL: SIMD counters differ")
        if a.wram_tiles != b.wram_tiles:
            raise SystemExit("PARITY FAIL: WRAM tile counts differ")


def check_worker_invariance(spec):
    """Outputs, ledgers and tiles identical at every worker count."""
    baseline = None
    for workers in spec["workers"]:
        system, comm, pe_ids = setup(spec, "vectorized", "compiled",
                                     spec["tile"], workers)
        results = submit(comm, spec)
        economics = [(r.ledger.total, r.tiles) for r in results]
        outputs = outputs_of(system, pe_ids, spec)
        comm.close()
        if baseline is None:
            baseline = (economics, outputs)
            continue
        if economics != baseline[0]:
            raise SystemExit(f"INVARIANCE FAIL: ledger/tiles at "
                             f"{workers} workers differ from serial")
        if not np.array_equal(outputs, baseline[1]):
            raise SystemExit(f"INVARIANCE FAIL: outputs at {workers} "
                             f"workers differ from serial")


def time_batch(spec, workers, iters):
    """Mean steady-state seconds per batch submit at ``workers``."""
    system, comm, pe_ids = setup(spec, "vectorized", "compiled",
                                 spec["tile"], workers)
    submit(comm, spec)  # warm caches, tables, pool threads, scratch
    start = time.perf_counter()
    for _ in range(iters):
        submit(comm, spec)
    elapsed = (time.perf_counter() - start) / iters
    waves = comm.stats.parallel_waves
    comm.close()
    if workers > 1 and waves < 1:
        raise SystemExit(f"TIMING FAIL: {workers}-worker session never "
                         f"formed a parallel wave")
    return elapsed


def main(argv=None):
    """Parse args, check parity, time the gate, write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI (256 PEs, >= 1.3x "
                             "gate at 2 workers, core-aware)")
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    spec = MODES[mode]
    cores = os.cpu_count() or 1

    print("[parity] pooled streamed batch vs scalar interpreted oracle ...",
          flush=True)
    check_oracle_parity(tile=spec["tile"] // 16,
                        workers=spec["gate_workers"])
    print("[parity] worker-count invariance at gate size ...", flush=True)
    check_worker_invariance(spec)

    serial_s = None
    sweep = []
    headline = None
    for workers in spec["workers"]:
        seconds = time_batch(spec, workers, spec["iters"])
        if workers == 1:
            serial_s = seconds
        speedup = serial_s / seconds
        entry = {"workers": workers, "seconds_per_batch": seconds,
                 "speedup_vs_serial": speedup}
        sweep.append(entry)
        if workers == spec["gate_workers"]:
            headline = entry
        print(f"[timing] {workers} workers: {seconds * 1e3:.3f} ms/batch "
              f"({speedup:.2f}x vs serial)", flush=True)

    gated = cores >= spec["gate_workers"]
    gate = (f"enforced (>= {spec['threshold']:.1f}x)" if gated
            else f"skipped ({cores} cores)")
    report = {
        "mode": mode,
        "workload": {"collective": "alltoall",
                     "batch": spec["batch"], "npes": spec["npes"],
                     "payload_bytes": spec["batch"] * spec["npes"]
                     * spec["per_pe"],
                     "tile_bytes": spec["tile"], "dtype": "int64",
                     "backend": "vectorized"},
        "parity": "bit-exact vs scalar interpreted oracle (outputs, simd, "
                  "wram_tiles); outputs/ledgers/tiles invariant across "
                  "worker counts at gate size",
        "host_cores": cores,
        "headline": {"workers": spec["gate_workers"],
                     "threshold": spec["threshold"],
                     "speedup": headline["speedup_vs_serial"],
                     "gate": gate},
        "sweep": sweep,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if not gated:
        print(f"WARNING: wall-clock gate skipped -- host has {cores} "
              f"core(s), gate needs >= {spec['gate_workers']}; parity "
              f"and invariance checks still passed", flush=True)
        return 0
    if headline["speedup_vs_serial"] < spec["threshold"]:
        print(f"REGRESSION: {spec['gate_workers']}-worker speedup "
              f"{headline['speedup_vs_serial']:.2f}x < "
              f"{spec['threshold']:.1f}x", file=sys.stderr)
        return 1
    print(f"OK: parallel replay {headline['speedup_vs_serial']:.2f}x >= "
          f"{spec['threshold']:.1f}x at {spec['gate_workers']} workers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
