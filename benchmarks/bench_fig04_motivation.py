"""Figure 4: execution-time breakdown of baseline applications.

Paper: in all five applications communication consumes a substantial
share, split between host-side data modulation, host memory traffic,
and domain transfer.
"""

from repro.analysis import experiments as E

from _common import run_experiment


def test_fig04_baseline_breakdown(benchmark):
    rows = run_experiment(
        benchmark, "fig04_motivation", E.fig04_motivation,
        "Figure 4: baseline app breakdown (comm fraction + comm split)")
    assert all(r["comm_frac"] > 0.3 for r in rows)
