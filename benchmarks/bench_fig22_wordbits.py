"""Figure 22: word-width sensitivity on GNN (paper: 8-bit elements let
cross-domain modulation apply to the arithmetic primitives, giving a
1.64x geomean speedup over the baseline)."""

from repro.analysis import experiments as E

from _common import run_experiment


def test_fig22_word_bits(benchmark):
    rows = run_experiment(
        benchmark, "fig22_wordbits", E.fig22_wordbits,
        "Figure 22: GNN across 8/32/64-bit elements")
    for strategy in ("rs_ar", "ar_ag"):
        series = [r for r in rows if r["strategy"] == strategy]
        widths = {r["width"]: r["pidcomm_s"] for r in series}
        assert widths["int8"] < widths["int32"] < widths["int64"]
