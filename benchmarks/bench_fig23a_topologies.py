"""Figure 23a: virtual hypercube vs ring and tree topologies.

Paper: with all PID-Comm optimizations applied to every topology, the
ring is up to 2.05x and the tree up to 7.89x slower than the hypercube.
"""

from repro.analysis import experiments as E

from _common import run_experiment


def test_fig23a_topologies(benchmark):
    rows = run_experiment(
        benchmark, "fig23a_topologies", E.fig23a_topologies,
        "Figure 23a: 32x32 AllReduce by topology "
        "(paper: ring <= 2.05x, tree <= 7.89x slower)")
    slow = {r["topology"]: r["slowdown"] for r in rows}
    assert slow["tree"] > slow["ring"] > 1.0
