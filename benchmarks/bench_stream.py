#!/usr/bin/env python
"""Benchmark streamed tiled replay vs. untiled compiled replay.

Runs a large functional AlltoAll with the session engine in
``execution="compiled"`` mode, untiled and streamed
(``stream_tile_bytes=...``), on the vectorized backend.  Before timing,
the streamed path is checked bit-exact against the *scalar interpreted*
oracle at a moderate size (outputs, SIMD counters, WRAM tiles) and
against the untiled compiled replay at the full gate size, so streaming
can never trade correctness for speed.  Timing measures the steady
state: plan, program, the op's arena-global gather table and the
scratch-pool buffers are all built on a warmup call, then the timed
loop replays band by band with zero heap allocations.

Why streaming wins: the untiled replay materializes the whole payload
three times (staging copy, gather result, scatter write-back), while
the streamed replay gathers each output-row band straight from the
strided source with one ``np.take(..., out=)`` into a reusable
scratch-pool tile -- roughly half the DRAM traffic, and the working set
stays cache-sized.

The script exits non-zero if any parity check fails, if the headline
speedup falls below the threshold (>= 2x for the full 1024-PE / 64 MiB
run, >= 1.2x for ``--smoke``), or if the scratch pool's high-water mark
ever exceeds two tiles::

    PYTHONPATH=src python benchmarks/bench_stream.py --smoke
    PYTHONPATH=src python benchmarks/bench_stream.py   # full gate
"""

import argparse
import json
import sys
import time

import numpy as np

from repro import (Communicator, DimmGeometry, DimmSystem, HypercubeManager,
                   SessionConfig)
from repro.core.groups import slice_groups
from repro.dtypes import INT64

GEOMETRIES = {
    256: DimmGeometry(2, 2, 8, 8),
    1024: DimmGeometry(4, 4, 8, 8),
}

#: mode -> gate workload.  ``per_pe`` bytes of AlltoAll payload per PE
#: (full: 1024 PEs x 64 KiB = 64 MiB, the ISSUE's acceptance case).
MODES = {
    "full": {"npes": 1024, "per_pe": 1 << 16, "mram": 1 << 18,
             "tile": 8 << 20, "sweep": (4 << 20, 8 << 20, 16 << 20),
             "threshold": 2.0, "iters": 6},
    "smoke": {"npes": 256, "per_pe": 1 << 16, "mram": 1 << 18,
              "tile": 2 << 20, "sweep": (2 << 20,),
              "threshold": 1.2, "iters": 12},
}

#: parity workload (scalar interpreted oracle; kept moderate because
#: the oracle loops PEs in Python).
PARITY = {"npes": 256, "per_pe": 1 << 12, "mram": 1 << 14}


def setup(npes, per_pe, mram, backend, execution, tile=None):
    """Fresh system + communicator + seeded inputs for one run."""
    system = DimmSystem(GEOMETRIES[npes], mram_bytes=mram, backend=backend)
    manager = HypercubeManager(system, shape=(npes,))
    comm = Communicator(manager, SessionConfig(
        execution=execution, stream_tile_bytes=tile))
    pe_ids = slice_groups(manager, "1")[0].pe_ids
    rng = np.random.default_rng(11)
    values = rng.integers(-99, 100, (npes, per_pe // INT64.itemsize),
                          dtype=np.int64)
    system.scatter_elements(pe_ids, 0, list(values), INT64)
    return system, comm, pe_ids


def invoke(comm, per_pe):
    """One functional AlltoAll; src at 0, dst right after it."""
    return comm.alltoall("1", per_pe, src_offset=0, dst_offset=per_pe,
                         data_type=INT64)


def outputs_of(system, pe_ids, per_pe):
    return np.stack(system.gather_elements(
        pe_ids, per_pe, per_pe // INT64.itemsize, INT64))


def check_oracle_parity(tile):
    """Streamed replay vs. the scalar interpreted oracle, bit-exact."""
    runs = {}
    for mode, backend, execution, t in (
            ("oracle", "scalar", "interpreted", None),
            ("streamed", "vectorized", "compiled", tile)):
        system, comm, pe_ids = setup(PARITY["npes"], PARITY["per_pe"],
                                     PARITY["mram"], backend, execution,
                                     tile=t)
        result = invoke(comm, PARITY["per_pe"])
        runs[mode] = (outputs_of(system, pe_ids, PARITY["per_pe"]), result)
    oracle_out, oracle_res = runs["oracle"]
    stream_out, stream_res = runs["streamed"]
    if stream_res.execution != "streamed" or stream_res.tiles < 2:
        raise SystemExit(
            f"PARITY FAIL: streaming did not engage "
            f"(execution={stream_res.execution}, tiles={stream_res.tiles})")
    if not np.array_equal(oracle_out, stream_out):
        raise SystemExit("PARITY FAIL: streamed outputs diverge from the "
                         "scalar interpreted oracle")
    if oracle_res.simd != stream_res.simd:
        raise SystemExit("PARITY FAIL: SIMD counters differ")
    if oracle_res.wram_tiles != stream_res.wram_tiles:
        raise SystemExit("PARITY FAIL: WRAM tile counts differ")
    if stream_res.ledger.total > oracle_res.ledger.total:
        raise SystemExit("PARITY FAIL: pipelined ledger exceeds the "
                         "interpreted estimate")


def check_untiled_parity(spec, tile):
    """Streamed vs. untiled compiled replay at the full gate size."""
    outs = {}
    for mode, t in (("untiled", None), ("streamed", tile)):
        system, comm, pe_ids = setup(spec["npes"], spec["per_pe"],
                                     spec["mram"], "vectorized",
                                     "compiled", tile=t)
        invoke(comm, spec["per_pe"])
        outs[mode] = outputs_of(system, pe_ids, spec["per_pe"])
    if not np.array_equal(outs["untiled"], outs["streamed"]):
        raise SystemExit("PARITY FAIL: streamed gate-size outputs diverge "
                         "from untiled compiled replay")


def time_replay(spec, tile, iters):
    """Mean steady-state seconds per AlltoAll; returns (secs, result)."""
    system, comm, pe_ids = setup(spec["npes"], spec["per_pe"],
                                 spec["mram"], "vectorized", "compiled",
                                 tile=tile)
    invoke(comm, spec["per_pe"])  # warm caches, tables, pool buffers
    start = time.perf_counter()
    for _ in range(iters):
        result = invoke(comm, spec["per_pe"])
    return (time.perf_counter() - start) / iters, result


def main(argv=None):
    """Parse args, check parity, time the gate, write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI (256 PEs, 16 MiB "
                             "payload, >= 1.2x gate)")
    parser.add_argument("--out", default="BENCH_stream.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    spec = MODES[mode]
    payload = spec["npes"] * spec["per_pe"]

    print(f"[parity] streamed vs scalar interpreted oracle ...", flush=True)
    check_oracle_parity(tile=spec["tile"] // 16)
    print(f"[parity] streamed vs untiled compiled at gate size ...",
          flush=True)
    check_untiled_parity(spec, spec["tile"])

    untiled_s, _ = time_replay(spec, None, spec["iters"])
    sweep = []
    failures = []
    headline = None
    for tile in spec["sweep"]:
        streamed_s, result = time_replay(spec, tile, spec["iters"])
        speedup = untiled_s / streamed_s
        entry = {
            "tile_bytes": tile,
            "tiles": result.tiles,
            "seconds_per_op": streamed_s,
            "speedup_vs_untiled": speedup,
            "peak_scratch_bytes": result.peak_scratch_bytes,
        }
        sweep.append(entry)
        if result.peak_scratch_bytes > 2 * tile:
            failures.append(
                f"peak scratch {result.peak_scratch_bytes}B exceeds two "
                f"{tile}B tiles")
        if tile == spec["tile"]:
            headline = entry
        print(f"[timing] tile {tile >> 10} KiB: untiled "
              f"{untiled_s * 1e3:.3f}ms, streamed {streamed_s * 1e3:.3f}ms "
              f"({speedup:.2f}x, {result.tiles} tiles, peak scratch "
              f"{result.peak_scratch_bytes >> 10} KiB)", flush=True)

    report = {
        "mode": mode,
        "workload": {"collective": "alltoall", "npes": spec["npes"],
                     "payload_bytes": payload, "dtype": "int64",
                     "backend": "vectorized"},
        "parity": "bit-exact vs scalar interpreted oracle (outputs, simd, "
                  "wram_tiles) and vs untiled compiled replay at gate size",
        "untiled_seconds_per_op": untiled_s,
        "headline": {"tile_bytes": spec["tile"],
                     "threshold": spec["threshold"],
                     "speedup": headline["speedup_vs_untiled"],
                     "peak_scratch_bytes": headline["peak_scratch_bytes"],
                     "scratch_bound": "<= 2 tiles"},
        "sweep": sweep,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if headline["speedup_vs_untiled"] < spec["threshold"]:
        failures.append(
            f"headline streamed speedup {headline['speedup_vs_untiled']:.2f}x"
            f" < {spec['threshold']:.1f}x")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"OK: streamed replay {headline['speedup_vs_untiled']:.2f}x >= "
          f"{spec['threshold']:.1f}x, peak scratch "
          f"{headline['peak_scratch_bytes']}B <= 2 tiles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
