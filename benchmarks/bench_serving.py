#!/usr/bin/env python
"""Benchmark multi-tenant serving vs. serialized per-tenant submission.

Replays the load generator's application mixes (DLRM bursts, GNN
epochs, BFS frontiers) for 8 concurrent tenants through a
:class:`~repro.serving.CollectiveServer` and compares modelled goodput
against the serialized baseline: the *identical* request stream
submitted one request at a time through a solo session (no cross-tenant
batching, so every request is priced alone).  The server drains
fair-share batches into the engine's hazard-wave ``submit()``, whose
overlap-aware pricing merges the tenants' data-independent requests --
that concurrency is the whole speedup; per-request results stay
bit-identical.

Before timing, serving parity is checked: all eight collectives run
functionally through the server and through a solo Communicator on
both backends, and outputs, MRAM images, and ledger totals must match
exactly -- the front-end may never change answers.

The script exits non-zero if any parity check fails or if the headline
goodput ratio falls below the threshold (>= 2x for both the full
1024-PE run and ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
    PYTHONPATH=src python benchmarks/bench_serving.py   # full gate
"""

import argparse
import asyncio
import json
import sys

import numpy as np

from repro import (
    CollectiveServer,
    CommRequest,
    Communicator,
    DimmGeometry,
    DimmSystem,
    HypercubeManager,
    SessionConfig,
)
from repro.serving import LoadGenerator, TenantLoad

GEOMETRIES = {
    32: DimmGeometry(2, 1, 4, 4),
    256: DimmGeometry(2, 2, 8, 8),
    1024: DimmGeometry(4, 4, 8, 8),
}

#: mode -> gate workload: 8 tenants cycling through the three mixes.
MODES = {
    "full": {"npes": 1024, "shape": (32, 32), "dims": "10",
             "mram": 64 << 20, "rounds": 6, "threshold": 2.0},
    "smoke": {"npes": 256, "shape": (16, 16), "dims": "10",
              "mram": 8 << 20, "rounds": 3, "threshold": 2.0},
}

TENANTS = 8
MIX_CYCLE = ("dlrm_burst", "gnn_epoch", "bfs_frontier")

#: parity workload (functional, so kept small).
PARITY = {"npes": 32, "shape": (8, 4), "dims": "10", "mram": 1 << 16,
          "size": 256}


def build_manager(spec, backend="scalar"):
    """Fresh system + manager for one run."""
    system = DimmSystem(GEOMETRIES[spec["npes"]], mram_bytes=spec["mram"],
                        backend=backend)
    return HypercubeManager(system, shape=spec["shape"])


def parity_requests(instances):
    """One request per primitive, covering payload and rooted paths."""
    size = PARITY["size"]
    elems = size // 8
    group = 8
    return [
        CommRequest("alltoall", PARITY["dims"], size, dst_offset=8192),
        CommRequest("allgather", PARITY["dims"], size, dst_offset=16384),
        CommRequest("reduce_scatter", PARITY["dims"], size, dst_offset=8192),
        CommRequest("allreduce", PARITY["dims"], size, src_offset=4096,
                    dst_offset=8192),
        CommRequest("gather", PARITY["dims"], size, src_offset=4096),
        CommRequest("reduce", PARITY["dims"], size, src_offset=20480),
        CommRequest("scatter", PARITY["dims"], size, dst_offset=24576,
                    payloads={i: np.arange(group * elems, dtype=np.int64) + i
                              for i in range(instances)}),
        CommRequest("broadcast", PARITY["dims"], size, dst_offset=28672,
                    payloads={i: np.arange(elems, dtype=np.int64) - i
                              for i in range(instances)}),
    ]


def seeded_manager(backend):
    """Parity manager with deterministic per-PE inputs."""
    from repro.dtypes import INT64

    manager = build_manager(PARITY, backend)
    values = np.arange(PARITY["size"] // 8, dtype=np.int64)
    for pe in manager.all_pes:
        for offset in (0, 4096, 20480):
            manager.system.write_elements(pe, offset, values + pe, INT64)
    return manager


def check_parity(backend):
    """Server vs. solo session: identical answers, or SystemExit."""
    solo_manager = seeded_manager(backend)
    served_manager = seeded_manager(backend)
    instances = len(solo_manager.all_pes) // 8
    config = SessionConfig(backend=backend)

    solo = Communicator(solo_manager, config)
    solo_results = [solo.submit([req]).futures[0].result()
                    for req in parity_requests(instances)]

    async def serve():
        server = CollectiveServer(served_manager, config)
        session = server.session("tenant")
        futures = [session.submit(req)
                   for req in parity_requests(instances)]
        await server.drain()
        return [await f for f in futures]

    served_results = asyncio.run(serve())
    for solo_res, served_res in zip(solo_results, served_results):
        name = solo_res.plan.primitive
        if served_res.ledger.total != solo_res.ledger.total:
            raise SystemExit(f"PARITY FAIL [{backend}]: {name} served "
                             f"ledger differs from solo")
        solo_out = solo_res.host_outputs or {}
        served_out = served_res.host_outputs or {}
        for inst, expected in solo_out.items():
            if not np.array_equal(served_out[inst], expected):
                raise SystemExit(f"PARITY FAIL [{backend}]: {name} host "
                                 f"outputs diverge (instance {inst})")
    for pe in solo_manager.all_pes:
        solo_mem = solo_manager.system.memory(pe).read(0, PARITY["mram"])
        served_mem = served_manager.system.memory(pe).read(0, PARITY["mram"])
        if not np.array_equal(solo_mem, served_mem):
            raise SystemExit(f"PARITY FAIL [{backend}]: MRAM image of PE "
                             f"{pe} diverges after the request stream")


def tenant_loads():
    """The 8 concurrent tenants, mixes cycling, one heavier tenant."""
    return [TenantLoad(f"tenant-{i}", MIX_CYCLE[i % len(MIX_CYCLE)],
                       weight=2.0 if i == 0 else 1.0)
            for i in range(TENANTS)]


def run_served(spec, seed):
    """Run the mixes through the server; returns the loadgen report."""

    async def scenario():
        server = CollectiveServer(build_manager(spec),
                                  SessionConfig(functional=False),
                                  max_queue_depth=512,
                                  batch_limit=2 * TENANTS)
        gen = LoadGenerator(server, tenant_loads(), dims=spec["dims"],
                            seed=seed)
        return await gen.run(rounds=spec["rounds"])

    return asyncio.run(scenario())


def run_serialized(spec, seed):
    """The identical request stream, one request at a time, solo.

    Returns (modelled seconds, completed payload bytes).
    """
    from repro.engine.stats import plan_payload_bytes

    async def collect():
        server = CollectiveServer(build_manager(spec),
                                  SessionConfig(functional=False))
        gen = LoadGenerator(server, tenant_loads(), dims=spec["dims"],
                            seed=seed)
        return [request for round_idx in range(spec["rounds"])
                for _, request in gen.round_requests(round_idx)]

    requests = asyncio.run(collect())
    comm = Communicator(build_manager(spec), SessionConfig(functional=False))
    seconds = 0.0
    payload = 0
    for request in requests:
        result = comm.submit([request]).futures[0].result()
        seconds += result.seconds
        payload += plan_payload_bytes(result.plan)
    return seconds, payload


def main(argv=None):
    """Parse args, check parity, run the gate, write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI (256 PEs, 3 rounds)")
    parser.add_argument("--seed", type=int, default=20240408)
    parser.add_argument("--out", default="BENCH_serving.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    spec = MODES[mode]

    for backend in ("scalar", "vectorized"):
        print(f"[parity] server vs solo session, all 8 collectives, "
              f"{backend} backend ...", flush=True)
        check_parity(backend)

    print(f"[gate] {TENANTS} tenants x {spec['rounds']} rounds on "
          f"{spec['npes']} PEs ...", flush=True)
    report = run_served(spec, args.seed)
    serial_seconds, serial_payload = run_serialized(spec, args.seed)

    served_payload = sum(t["bytes_completed"]
                         for t in report["tenants"].values())
    if served_payload != serial_payload:
        raise SystemExit(
            f"GATE FAIL: served stream moved {served_payload} B but the "
            f"serialized baseline moved {serial_payload} B -- the two "
            "runs are not comparable")
    served_goodput = report["goodput_bytes_per_second"]
    serial_goodput = serial_payload / serial_seconds
    ratio = served_goodput / serial_goodput
    p99_ms = max(t["p99_ms"] for t in report["tenants"].values())

    print(f"[gate] serialized {serial_seconds * 1e3:.3f} ms modelled, "
          f"served {report['clock_seconds'] * 1e3:.3f} ms modelled "
          f"({ratio:.2f}x goodput, worst-tenant p99 {p99_ms:.3f} ms)",
          flush=True)

    out = {
        "mode": mode,
        "workload": {
            "tenants": TENANTS,
            "mixes": {load.tenant_id: load.mix for load in tenant_loads()},
            "rounds": spec["rounds"],
            "npes": spec["npes"],
            "dims": spec["dims"],
            "seed": args.seed,
            "payload_bytes": served_payload,
        },
        "parity": "all 8 collectives server vs solo, scalar + vectorized: "
                  "ledger totals, host outputs, MRAM images bit-identical",
        "serialized": {"modelled_seconds": serial_seconds,
                       "goodput_bytes_per_second": serial_goodput},
        "served": {"modelled_seconds": report["clock_seconds"],
                   "goodput_bytes_per_second": served_goodput,
                   "batches": report["batches"],
                   "admission": report["admission"],
                   "tenants": report["tenants"]},
        "headline": {"goodput_ratio": ratio,
                     "threshold": spec["threshold"],
                     "worst_tenant_p99_ms": p99_ms},
    }
    with open(args.out, "w") as handle:
        json.dump(out, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if ratio < spec["threshold"]:
        print(f"REGRESSION: served goodput {ratio:.2f}x < "
              f"{spec['threshold']:.1f}x serialized", file=sys.stderr)
        return 1
    print(f"OK: multi-tenant serving {ratio:.2f}x >= "
          f"{spec['threshold']:.1f}x serialized goodput "
          f"(worst p99 {p99_ms:.3f} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
