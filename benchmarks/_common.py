"""Shared plumbing for the figure/table benchmark harnesses.

Each bench regenerates one evaluation artifact, records the rendered
rows under ``benchmarks/results/``, and registers the regeneration time
with pytest-benchmark (run ``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.report import render_dict_rows

RESULTS_DIR = Path(__file__).parent / "results"


def run_experiment(benchmark, name: str, fn, title: str,
                   postprocess=None) -> list[dict]:
    """Benchmark ``fn``, render its rows, persist and print them."""
    rows = benchmark.pedantic(fn, rounds=1, iterations=1)
    extra = postprocess(rows) if postprocess else ""
    text = render_dict_rows(rows, title)
    if extra:
        text = f"{text}\n{extra}"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
    return rows
