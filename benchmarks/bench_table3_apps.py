"""Table III: benchmark application characteristics."""

from repro.analysis import experiments as E

from _common import run_experiment


def test_table3_applications(benchmark):
    rows = run_experiment(
        benchmark, "table3_apps", E.table3,
        "Table III: benchmark applications (hypercube dims + primitives)")
    assert len(rows) == 6
