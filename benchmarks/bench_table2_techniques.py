"""Table II: which optimization technique applies to which primitive.

Reproduced by introspection: the matrix is read off the planners'
behaviour at each ablation rung, not hard-coded, so it certifies the
implementation follows the paper's applicability rules.
"""

from repro.analysis import experiments as E

from _common import run_experiment


def test_table2_applicability_matrix(benchmark):
    rows = run_experiment(
        benchmark, "table2_techniques", E.table2,
        "Table II: technique applicability (introspected from planners)")
    by = {r["primitive"]: r for r in rows}
    # The paper's matrix, row for row.
    assert by["alltoall"]["cross_domain_modulation"]
    assert by["allgather"]["cross_domain_modulation"]
    assert not by["reduce_scatter"]["cross_domain_modulation"]
    assert not by["allreduce"]["cross_domain_modulation"]
    assert all(by[p]["in_register_modulation"]
               for p in ("alltoall", "reduce_scatter", "allgather",
                         "allreduce", "scatter", "gather", "reduce"))
    assert not by["broadcast"]["in_register_modulation"]
    assert by["reduce"]["pe_assisted_reordering"]
    assert not by["scatter"]["pe_assisted_reordering"]
