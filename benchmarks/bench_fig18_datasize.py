"""Figure 18: data-size sensitivity (paper: speedup grows with size,
reaching 2.89x geomean at 8 MB; 1-D AllGather baseline already fast)."""

from repro.analysis import experiments as E
from repro.analysis.report import geomean

from _common import run_experiment


def test_fig18_datasize_sweep(benchmark):
    rows = run_experiment(
        benchmark, "fig18_datasize", E.fig18_datasize,
        "Figure 18: throughput vs payload (128 KB - 8 MB per PE)",
        postprocess=lambda rows: "geomean speedup at 8 MB: %.2fx "
        "(paper: 2.89x)" % geomean(
            [r["speedup"] for r in rows if r["size_kb"] == 8192]))
    big = [r["speedup"] for r in rows if r["size_kb"] == 8192]
    small = [r["speedup"] for r in rows if r["size_kb"] == 128]
    assert geomean(big) > geomean(small)
