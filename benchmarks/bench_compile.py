#!/usr/bin/env python
"""Benchmark compiled program replay vs. interpreted execution.

Runs the four dense collectives functionally with the session engine in
``execution="compiled"`` and ``execution="interpreted"`` mode (both on
the vectorized backend) across PE counts.  Before timing, every case is
checked bit-exact against the *scalar interpreted* oracle -- outputs,
``CostLedger`` breakdown, SIMD register counters, and WRAM tile counts
-- so the compile stage can never trade correctness or cost fidelity
for speed.  Timing measures the steady state: the plan and program are
compiled once on a warmup call, then the timed loop replays the cached
program (zero index math, zero validation, a short sequence of numpy
dispatches).

The script exits non-zero if any parity check fails or the headline
steady-state speedup falls below the regression threshold (>= 2x for
the full 1024-PE AlltoAll *and* AllReduce runs, >= 1.2x at 256 PEs for
``--smoke``), so CI can run it as a regression gate::

    PYTHONPATH=src python benchmarks/bench_compile.py --smoke
    PYTHONPATH=src python benchmarks/bench_compile.py   # full sweep
"""

import argparse
import json
import sys
import time

import numpy as np

from repro import (Communicator, DimmGeometry, DimmSystem, HypercubeManager,
                   SessionConfig)
from repro.core.groups import slice_groups
from repro.dtypes import INT64, SUM

MRAM_BYTES = 1 << 15
ELEM = INT64.itemsize

GEOMETRIES = {
    64: DimmGeometry(1, 1, 8, 8),
    256: DimmGeometry(2, 2, 8, 8),
    1024: DimmGeometry(4, 4, 8, 8),
}

#: collective -> (total bytes per PE, output elems per PE, needs reduce op)
SPECS = {
    "alltoall": (lambda n: n * ELEM, lambda n: n, False),
    "allgather": (lambda n: ELEM, lambda n: n, False),
    "reduce_scatter": (lambda n: n * ELEM, lambda n: 1, True),
    "allreduce": (lambda n: n * ELEM, lambda n: n, True),
}


def setup(npes, backend, execution):
    """Fresh system + communicator for one run."""
    system = DimmSystem(GEOMETRIES[npes], mram_bytes=MRAM_BYTES,
                        backend=backend)
    manager = HypercubeManager(system, shape=(npes,))
    comm = Communicator(manager, SessionConfig(execution=execution))
    pe_ids = slice_groups(manager, "1")[0].pe_ids
    return system, comm, pe_ids


def fill_inputs(system, pe_ids, nbytes, seed):
    """Seeded per-PE int64 inputs at offset 0; returns them rank-ordered."""
    rng = np.random.default_rng(seed)
    values = rng.integers(-99, 100, (len(pe_ids), nbytes // ELEM),
                          dtype=np.int64)
    system.scatter_elements(pe_ids, 0, list(values), INT64)
    return values


def invoke(comm, collective, npes):
    """One functional collective; src at 0, dst right after it."""
    total_fn, _, needs_op = SPECS[collective]
    total = total_fn(npes)
    kwargs = {"reduction_type": SUM} if needs_op else {}
    return getattr(comm, collective)(
        "1", total, src_offset=0, dst_offset=total, data_type=INT64,
        **kwargs)


def check_parity(collective, npes, seed=11):
    """Compiled replay vs. the scalar interpreted oracle, bit-exact."""
    total_fn, out_fn, _ = SPECS[collective]
    total, out_elems = total_fn(npes), out_fn(npes)
    runs = {}
    for mode, backend, execution in (
            ("oracle", "scalar", "interpreted"),
            ("compiled", "vectorized", "compiled")):
        system, comm, pe_ids = setup(npes, backend, execution)
        inputs = fill_inputs(system, pe_ids, total, seed)
        invoke(comm, collective, npes)  # compile + first execution
        fill_inputs(system, pe_ids, total, seed)
        result = invoke(comm, collective, npes)  # steady-state path
        outputs = np.stack(system.gather_elements(pe_ids, total, out_elems,
                                                  INT64))
        runs[mode] = (inputs, outputs, result)
    _, oracle_out, oracle_res = runs["oracle"]
    _, compiled_out, compiled_res = runs["compiled"]
    label = f"{collective}@{npes}"
    if compiled_res.execution != "compiled":
        raise SystemExit(f"PARITY FAIL {label}: replay did not engage")
    if not np.array_equal(oracle_out, compiled_out):
        raise SystemExit(f"PARITY FAIL {label}: outputs diverge")
    if oracle_res.ledger.breakdown() != compiled_res.ledger.breakdown():
        raise SystemExit(f"PARITY FAIL {label}: cost ledgers differ")
    if oracle_res.simd != compiled_res.simd:
        raise SystemExit(f"PARITY FAIL {label}: SIMD counters differ")
    if oracle_res.wram_tiles != compiled_res.wram_tiles:
        raise SystemExit(f"PARITY FAIL {label}: WRAM tile counts differ")


def time_execution(collective, npes, execution, iters, seed=5):
    """Mean steady-state seconds per collective on the vectorized backend."""
    system, comm, pe_ids = setup(npes, "vectorized", execution)
    total_fn, _, _ = SPECS[collective]
    fill_inputs(system, pe_ids, total_fn(npes), seed)
    invoke(comm, collective, npes)  # warm plan + program caches
    start = time.perf_counter()
    for _ in range(iters):
        invoke(comm, collective, npes)
    return (time.perf_counter() - start) / iters


def main(argv=None):
    """Parse args, run the sweep, write the JSON report, gate thresholds."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep for CI (256 PEs, 2 "
                             "collectives, >=1.2x gate)")
    parser.add_argument("--out", default="BENCH_compile.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    if args.smoke:
        pe_counts = (256,)
        collectives = ("alltoall", "allreduce")
        headline_cases, threshold = ("alltoall@256", "allreduce@256"), 1.2
        iters = 20
    else:
        pe_counts = (64, 256, 1024)
        collectives = tuple(SPECS)
        headline_cases, threshold = ("alltoall@1024", "allreduce@1024"), 2.0
        iters = 30

    results = []
    speedups = {}
    for npes in pe_counts:
        for collective in collectives:
            label = f"{collective}@{npes}"
            print(f"[parity] {label} ...", flush=True)
            check_parity(collective, npes)
            timings = {}
            for execution in ("interpreted", "compiled"):
                seconds = time_execution(collective, npes, execution, iters)
                timings[execution] = seconds
                results.append({
                    "collective": collective, "npes": npes,
                    "backend": "vectorized", "execution": execution,
                    "iters": iters, "seconds_per_op": seconds,
                    "ops_per_sec": 1.0 / seconds,
                })
            speedups[label] = timings["interpreted"] / timings["compiled"]
            print(f"[timing] {label}: interpreted "
                  f"{timings['interpreted'] * 1e3:.3f}ms, compiled "
                  f"{timings['compiled'] * 1e3:.3f}ms "
                  f"({speedups[label]:.2f}x)", flush=True)

    report = {
        "mode": "smoke" if args.smoke else "full",
        "dtype": "int64", "chunk_bytes": ELEM,
        "backend": "vectorized",
        "parity": "bit-exact vs scalar interpreted oracle "
                  "(outputs, ledger, simd, wram_tiles)",
        "headline": {"cases": list(headline_cases),
                     "threshold": threshold,
                     "speedups": {c: speedups[c] for c in headline_cases}},
        "speedups": speedups,
        "results": results,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    failed = [c for c in headline_cases if speedups[c] < threshold]
    if failed:
        for case in failed:
            print(f"REGRESSION: {case} steady-state speedup "
                  f"{speedups[case]:.2f}x < {threshold:.1f}x",
                  file=sys.stderr)
        return 1
    for case in headline_cases:
        print(f"OK: {case} steady-state speedup {speedups[case]:.2f}x "
              f">= {threshold:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
