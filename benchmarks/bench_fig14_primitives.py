"""Figure 14: throughput of the eight supported primitives.

Paper ((32,32) cube, throughput = larger data side / time):
AlltoAll 5.19x, ReduceScatter 4.46x, AllReduce 4.23x speedups,
geomean 2.83x; Broadcast ~1x (native driver already at peak).
"""

from repro.analysis import experiments as E

from _common import run_experiment


def test_fig14_primitive_throughput(benchmark):
    rows = run_experiment(
        benchmark, "fig14_primitives", E.fig14_primitives,
        "Figure 14: primitive throughput at (32,32), 8 MB/PE "
        "(paper: AA 5.19x RS 4.46x AR 4.23x, geomean 2.83x, Br ~1x)")
    by = {r["primitive"]: r["speedup"] for r in rows}
    assert by["alltoall"] > 4.0
    assert abs(by["broadcast"] - 1.0) < 0.05
