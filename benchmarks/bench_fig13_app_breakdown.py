"""Figure 13: per-primitive breakdown of each application."""

from repro.analysis import experiments as E

from _common import run_experiment


def test_fig13_per_primitive_breakdown(benchmark):
    rows = run_experiment(
        benchmark, "fig13_app_breakdown", E.fig13_app_breakdown,
        "Figure 13: app time by primitive, baseline vs PID-Comm "
        "(paper: communication latency largely reduced; Ga/Br <= 7%)")
    assert len(rows) == 12
