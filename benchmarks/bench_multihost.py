#!/usr/bin/env python
"""Benchmark rack-scale hierarchical collectives on the compiled engine.

Two gates, one per layer of the multihost stack:

* **engine** -- wall-clock replay: an 8-host hierarchical AlltoAll
  where every simulated host runs its local phases through the
  compiled vectorized engine with streamed tiles must beat the scalar
  interpreted multihost baseline by >= 3x per op in full mode (smoke
  runs 4 hosts at a relaxed 2.5x for shared-CI-runner noise).  Timed
  with ``functional=False``: local plans still execute against
  simulated device memory and the global phase is still compiled and
  priced on the fabric, but the host-side numpy exchange harness --
  identical work on both sides, no engine involvement -- is skipped,
  so the gate measures the replay the engine actually owns.  The
  end-to-end functional numbers (harness included) are reported
  alongside, ungated.
* **selection** -- modelled fabric seconds: across a grid of
  (primitive x payload x fabric topology), the :class:`GlobalTuner`'s
  auto-chosen global algorithm may cost at most 1.05x the best fixed
  algorithm priced on the same fabric.  The tuner is an argmin over
  the priced candidate set, so this guards the pricing plumbing (a
  mis-priced candidate or a stale decision cache shows up here).

Before timing, engine outputs are checked bit-exact against the scalar
interpreted oracle at a moderate size -- for AlltoAll *and* AllReduce,
on the oversubscribed leaf-spine fabric, with the tuner free to pick
any algorithm: topology and algorithm shape cost, never bytes.

The script exits non-zero if parity fails or either gate misses::

    PYTHONPATH=src python benchmarks/bench_multihost.py --smoke
    PYTHONPATH=src python benchmarks/bench_multihost.py   # full gate
"""

import argparse
import gc
import json
import sys
import time

import numpy as np

from repro.dtypes import INT64
from repro.engine import SessionConfig
from repro.multihost import (Fabric, GlobalTuner, MultiHostSystem,
                             multihost_allreduce, multihost_alltoall)

#: mode -> gate workload.  ``per_pe`` bytes of AlltoAll payload per PE.
MODES = {
    "full": {"hosts": 8, "per_pe": 1 << 14, "mram": 1 << 16,
             "iters": 3, "repeats": 5, "engine_gate": 3.0,
             "selection_gate": 1.05},
    "smoke": {"hosts": 4, "per_pe": 1 << 13, "mram": 1 << 15,
              "iters": 4, "repeats": 6, "engine_gate": 2.5,
              "selection_gate": 1.05},
}

#: parity workload (scalar interpreted oracle loops PEs in Python).
PARITY = {"hosts": 4, "per_pe": 1 << 12, "mram": 1 << 14}

#: The engine-side session under test: every local phase compiled on
#: the vectorized backend, tiles streamed through the staging arena.
def engine_config(per_pe):
    return SessionConfig(backend="vectorized", execution="compiled",
                         stream_tile_bytes=per_pe)


BASELINE_CONFIG = SessionConfig(backend="scalar", execution="interpreted")

#: Selection-gate grid: every (primitive, payload, topology) cell is
#: priced under the auto tuner and under each fixed algorithm.
SELECTION_PRIMITIVES = ("allreduce", "reduce_scatter", "allgather",
                        "alltoall")
SELECTION_PAYLOADS = (1 << 10, 1 << 20, 8 << 20)


def selection_fabrics(hosts):
    return (
        ("flat", Fabric.fully_connected(hosts)),
        ("ring", Fabric.ring(hosts)),
        ("leaf_spine_oversub",
         Fabric.leaf_spine(hosts, 2, spine_gbps=0.125)),
    )


def setup(hosts, per_pe, mram, config, *, fabric=None, seed=11):
    """Fresh multihost system with seeded per-PE inputs."""
    mh = MultiHostSystem(hosts, ranks_per_channel=1, mram_bytes=mram,
                         session_config=config, fabric=fabric)
    rng = np.random.default_rng(seed)
    elems = per_pe // INT64.itemsize
    p = mh.pes_per_host
    for system in mh.systems:
        values = [rng.integers(1, 100, elems, dtype=np.int64)
                  for _ in range(p)]
        system.scatter_elements(range(p), 0, list(values), INT64)
    return mh


def invoke(mh, per_pe, primitive="alltoall", *, functional=True):
    """One hierarchical collective; src at 0, dst right after it."""
    fn = multihost_alltoall if primitive == "alltoall" \
        else multihost_allreduce
    return fn(mh, per_pe, 0, per_pe, INT64, functional=functional)


def check_oracle_parity():
    """Engine hierarchy vs. the scalar interpreted oracle, bit-exact.

    Runs on the oversubscribed leaf-spine fabric with the tuner free,
    so parity also covers non-ring global algorithms: the functional
    exchange is canonical numpy regardless of what the cost model picks.
    """
    for primitive in ("alltoall", "allreduce"):
        outs = {}
        algorithm = None
        for mode, config in (("oracle", BASELINE_CONFIG),
                             ("engine", engine_config(PARITY["per_pe"]))):
            fabric = Fabric.leaf_spine(PARITY["hosts"], 2,
                                       spine_gbps=0.125)
            mh = setup(PARITY["hosts"], PARITY["per_pe"], PARITY["mram"],
                       config, fabric=fabric)
            result = invoke(mh, PARITY["per_pe"], primitive)
            outs[mode] = np.stack([np.stack(host)
                                   for host in result.outputs])
            algorithm = result.global_algorithm
            mh.close()
        if not np.array_equal(outs["oracle"], outs["engine"]):
            raise SystemExit(
                f"PARITY FAIL: engine {primitive} outputs diverge from "
                f"the scalar interpreted oracle (global algorithm "
                f"{algorithm})")


def time_engine_pair(spec, *, functional):
    """Steady-state seconds per op, baseline vs engine, AlltoAll.

    Both systems are built and warmed first, then timed in alternating
    best-of rounds so machine-load drift hits both sides equally.
    ``functional=False`` times the gated replay; ``functional=True``
    times the ungated end-to-end path (numpy exchange harness and
    output collection included).  Returns ``(baseline_seconds,
    engine_seconds, engine_result)``.
    """
    systems = {}
    for name, config in (("baseline", BASELINE_CONFIG),
                         ("engine", engine_config(spec["per_pe"]))):
        mh = setup(spec["hosts"], spec["per_pe"], spec["mram"], config)
        invoke(mh, spec["per_pe"], functional=functional)  # warm caches
        systems[name] = mh
    gc.collect()
    best = {"baseline": float("inf"), "engine": float("inf")}
    for _ in range(spec["repeats"]):
        for name in ("baseline", "engine"):
            start = time.perf_counter()
            for _ in range(spec["iters"]):
                result = invoke(systems[name], spec["per_pe"],
                                functional=functional)
            best[name] = min(
                best[name],
                (time.perf_counter() - start) / spec["iters"])
    for mh in systems.values():
        mh.close()
    return best["baseline"], best["engine"], result


def check_selection(spec):
    """Auto tuner vs. best fixed algorithm on modelled fabric seconds.

    Returns ``(worst_ratio, cells)`` where each cell records the
    tuner's pick and the per-algorithm prices for one
    (primitive, payload, fabric) point.
    """
    worst = 0.0
    cells = []
    for fabric_name, fabric in selection_fabrics(spec["hosts"]):
        tuner = GlobalTuner(fabric)
        for primitive in SELECTION_PRIMITIVES:
            for nbytes in SELECTION_PAYLOADS:
                candidates = tuner.candidates(primitive, nbytes)
                chosen = tuner.choose(primitive, nbytes)
                fixed_best = min(c.seconds for c in candidates)
                ratio = (chosen.seconds / fixed_best
                         if fixed_best > 0 else 1.0)
                worst = max(worst, ratio)
                cells.append({
                    "fabric": fabric_name, "primitive": primitive,
                    "payload_bytes": nbytes,
                    "chosen": chosen.describe(),
                    "chosen_seconds": chosen.seconds,
                    "fixed_best_seconds": fixed_best,
                    "ratio": ratio,
                    "per_algorithm_seconds": {
                        c.algorithm: c.seconds for c in candidates},
                })
    return worst, cells


def main(argv=None):
    """Parse args, check parity, time both gates, write the report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI (4 hosts, relaxed "
                             "engine gate, same selection gate)")
    parser.add_argument("--out", default="BENCH_multihost.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    spec = MODES[mode]

    print("[parity] engine hierarchy vs scalar interpreted oracle ...",
          flush=True)
    check_oracle_parity()

    base_s, engine_s, result = time_engine_pair(spec, functional=False)
    speedup = base_s / engine_s
    print(f"[timing] {spec['hosts']}-host alltoall replay: baseline "
          f"{base_s * 1e3:.3f}ms, engine {engine_s * 1e3:.3f}ms "
          f"({speedup:.2f}x)", flush=True)
    e2e_base, e2e_engine, _ = time_engine_pair(spec, functional=True)
    print(f"[timing] end-to-end functional (ungated): baseline "
          f"{e2e_base * 1e3:.3f}ms, engine {e2e_engine * 1e3:.3f}ms "
          f"({e2e_base / e2e_engine:.2f}x)", flush=True)

    worst_ratio, cells = check_selection(spec)
    print(f"[selection] {len(cells)} grid cells; worst auto-vs-fixed "
          f"ratio {worst_ratio:.4f}x", flush=True)

    report = {
        "mode": mode,
        "workload": {"collective": "alltoall", "hosts": spec["hosts"],
                     "pes_per_host": 64,
                     "per_pe_bytes": spec["per_pe"], "dtype": "int64",
                     "baseline": "scalar interpreted hierarchy",
                     "engine": "compiled vectorized, streamed tiles",
                     "gate_timing": "replay (functional=False; "
                                    "end-to-end reported ungated)"},
        "parity": "bit-exact vs scalar interpreted oracle on "
                  "oversubscribed leaf-spine (alltoall + allreduce)",
        "gates": {"min_engine_speedup": spec["engine_gate"],
                  "max_selection_ratio": spec["selection_gate"]},
        "headline": {"engine_speedup": speedup,
                     "selection_worst_ratio": worst_ratio,
                     "global_algorithm": result.global_algorithm,
                     "fabric_ms": result.fabric_seconds * 1e3},
        "results": {
            "replay_baseline_seconds_per_op": base_s,
            "replay_engine_seconds_per_op": engine_s,
            "functional_baseline_seconds_per_op": e2e_base,
            "functional_engine_seconds_per_op": e2e_engine,
            "functional_speedup": e2e_base / e2e_engine,
            "modelled_fabric_seconds": result.fabric_seconds,
            "fabric_bytes": result.fabric_bytes,
            "selection_grid": cells,
        },
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    failures = []
    if speedup < spec["engine_gate"]:
        failures.append(
            f"engine replay speedup {speedup:.2f}x < "
            f"{spec['engine_gate']:.1f}x over interpreted baseline")
    if worst_ratio > spec["selection_gate"]:
        failures.append(
            f"auto selection ratio {worst_ratio:.4f}x > "
            f"{spec['selection_gate']:.2f}x of best fixed algorithm")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"OK: engine {speedup:.2f}x >= {spec['engine_gate']:.1f}x, "
          f"selection worst {worst_ratio:.4f}x <= "
          f"{spec['selection_gate']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
