"""Table I: capability comparison against conventional frameworks."""

from repro.analysis import experiments as E

from _common import run_experiment


def test_table1_capability_matrix(benchmark):
    rows = run_experiment(
        benchmark, "table1_features", E.table1,
        "Table I: framework capabilities "
        "(paper: only PID-Comm is multi-instance + optimized + complete)")
    pid = [r for r in rows if r["framework"] == "PID-Comm"][0]
    assert pid["multi_instance"]
