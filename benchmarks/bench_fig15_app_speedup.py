"""Figure 15: application speedups (paper: 1.20x-3.99x, geomean 1.99x)."""

from repro.analysis import experiments as E

from _common import run_experiment


def test_fig15_app_speedups(benchmark):
    rows = run_experiment(
        benchmark, "fig15_app_speedup", E.fig15_app_speedup,
        "Figure 15: app speedup over the baseline "
        "(paper: 1.20x-3.99x, geomean 1.99x; DLRM least, CC most)")
    speedups = {r["app"]: r["speedup"] for r in rows}
    assert speedups["DLRM"] == min(v for k, v in speedups.items()
                                   if k != "geomean")
