"""Extra design-choice ablations called out in DESIGN.md."""

from repro.analysis import experiments as E

from _common import run_experiment


def test_ablation_fused_allreduce(benchmark):
    rows = run_experiment(
        benchmark, "ablation_fused_allreduce", E.ablation_fused_allreduce,
        "Ablation: fused AllReduce vs composed ReduceScatter + AllGather")
    assert rows[1]["seconds"] > rows[0]["seconds"]


def test_ablation_entangled_group_alignment(benchmark):
    rows = run_experiment(
        benchmark, "ablation_eg_alignment", E.ablation_eg_alignment,
        "Ablation: entangled-group-aligned vs naive PE placement "
        "(section III-B: partial bursts waste bus lanes)")
    assert rows[1]["lane_utilization"] < rows[0]["lane_utilization"]


def test_workload_variants(benchmark):
    """Fig 15 with the paper's secondary configurations (MLP 32k,
    DLRM embedding dim 32)."""
    from repro.analysis.experiments import fig15_app_speedup
    rows = run_experiment(
        benchmark, "fig15_workload_variants",
        lambda: fig15_app_speedup(include_variants=True),
        "Figure 15 variants: MLP 16k/32k, DLRM emb 16/32")
    by = {r["app"]: r["speedup"] for r in rows}
    assert "MLP-32k" in by and "DLRM-e32" in by


def test_autotune_shape(benchmark):
    """Shape auto-tuning demo: best 2-D cube for an AllGather-heavy mix
    (the Figure 20 / section VIII-G design-choice, automated)."""
    from repro.analysis.autotune import autotune_shape
    from repro.hw.system import DimmSystem

    def tune():
        system = DimmSystem.paper_testbed()
        scores = autotune_shape(
            system, 1024, 2,
            [("allgather", "10", 8 << 20),
             ("reduce_scatter", "10", 8 << 20)], min_dim=2)
        return [{"shape": "x".join(map(str, s.shape)),
                 "seconds": s.seconds} for s in scores[:5]]

    rows = run_experiment(benchmark, "autotune_shapes", tune,
                          "Auto-tuned hypercube shapes (best 5)")
    assert len(rows) == 5


def test_calibration_sensitivity(benchmark):
    """Tornado analysis: which machine constants the headline result
    actually depends on (robustness of the model-based reproduction)."""
    from repro.analysis.sensitivity import parameter_sensitivity
    rows = run_experiment(
        benchmark, "sensitivity", lambda: parameter_sensitivity(),
        "Sensitivity of the AlltoAll headline speedup to +-30% parameter "
        "perturbations")
    assert rows[0]["parameter"] == "bus_gbps_per_channel"
