"""Figure 20: hypercube-shape sensitivity (paper: AA ~20.6 and AR ~12.2
GB/s shape-independent; RS up to 17.8 and AG up to 36.1 GB/s with a
longer x axis)."""

from repro.analysis import experiments as E

from _common import run_experiment


def test_fig20_shape_sweep(benchmark):
    rows = run_experiment(
        benchmark, "fig20_shapes", E.fig20_shapes,
        "Figure 20: 3-D shapes of 1024 PEs, communication along x (GB/s)")
    assert rows[-1]["allgather"] > rows[0]["allgather"]
