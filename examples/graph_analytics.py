"""BFS and connected components on a simulated PIM system.

Both applications iterate PE-local graph kernels with a global
AllReduce (bitwise-or for BFS frontiers, min for CC labels) -- the
communication pattern that makes graph analytics "PIM-unfriendly"
without a fast collective library.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro import DimmSystem, HypercubeManager
from repro.apps import (
    BaselineCommBackend,
    BfsApp,
    BfsConfig,
    CcApp,
    CcConfig,
    PidCommBackend,
)
from repro.apps.bfs import golden_bfs
from repro.apps.cc import golden_cc
from repro.data import random_graph, rmat_graph


def bfs_demo() -> None:
    print("=== BFS on a 64-vertex R-MAT graph, 32 PEs ===")
    graph = rmat_graph(64, 400, seed=7)
    app = BfsApp(graph, BfsConfig(source=0))
    system = DimmSystem.small(mram_bytes=1 << 18)
    manager = HypercubeManager(system, shape=(32,))
    result = app.run(manager, PidCommBackend(), functional=True)
    levels = result.output
    print(f"levels match golden BFS : "
          f"{np.array_equal(levels, golden_bfs(graph, 0))}")
    print(f"reached {int((levels >= 0).sum())}/{len(levels)} vertices in "
          f"{result.meta['iterations']} iterations")
    print(f"modelled time: {result.seconds * 1e3:.2f} ms "
          f"(comm {result.comm_seconds / result.seconds:.0%})")
    print()


def cc_demo() -> None:
    print("=== Connected components on a sparse random graph ===")
    graph = random_graph(64, 48, seed=3)
    app = CcApp(graph, CcConfig())
    system = DimmSystem.small(mram_bytes=1 << 18)
    manager = HypercubeManager(system, shape=(32,))

    pid = app.run(manager, PidCommBackend(), functional=True)
    labels = pid.output
    print(f"labels match golden CC  : "
          f"{np.array_equal(labels, golden_cc(graph))}")
    print(f"components found        : {len(np.unique(labels))}")

    # The same application code runs against the baseline library.
    base = CcApp(graph, CcConfig()).run(
        HypercubeManager(DimmSystem.small(mram_bytes=1 << 18), shape=(32,)),
        BaselineCommBackend(), functional=True)
    print(f"baseline comm time      : {base.comm_seconds * 1e3:8.2f} ms")
    print(f"PID-Comm comm time      : {pid.comm_seconds * 1e3:8.2f} ms "
          f"({base.comm_seconds / pid.comm_seconds:.2f}x)")
    print("(at this toy 64-vertex scale fixed launch overheads dominate,")
    print(" so the extra PE-reorder kernels can even lose -- the per-byte")
    print(" win needs real payloads; see the paper-scale run below)")
    print()


def paper_scale_demo() -> None:
    print("=== Analytic: LiveJournal-scale CC on 1024 PEs ===")
    from repro.analysis.workloads import paper_cc, testbed, app_manager
    system = testbed()
    manager = app_manager("CC", system, 1024)
    base = paper_cc().run(manager, BaselineCommBackend(), functional=False)
    pid = paper_cc().run(manager, PidCommBackend(), functional=False)
    print(f"baseline {base.seconds:7.1f}s -> PID-Comm {pid.seconds:7.1f}s "
          f"({base.seconds / pid.seconds:.2f}x; paper reports up to 3.99x)")


if __name__ == "__main__":
    bfs_demo()
    cc_demo()
    paper_scale_demo()
