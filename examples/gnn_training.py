"""GNN inference on PIM-enabled DIMMs with both 2-D strategies.

Runs a 3-layer GNN functionally on a small R-MAT graph (validated
against the dense golden model), then compares the two communication
strategies of the paper (RS&AR vs AR&AG) and the baseline at Reddit
scale analytically.

Run:  python examples/gnn_training.py
"""

import numpy as np

from repro import DimmSystem, HypercubeManager
from repro.analysis.workloads import paper_gnn
from repro.apps import BaselineCommBackend, GnnApp, GnnConfig, PidCommBackend
from repro.data import rmat_graph


def functional_demo() -> None:
    print("=== Functional: 32-vertex R-MAT graph on a 4x4 grid ===")
    graph = rmat_graph(32, 160, seed=1)
    app = GnnApp(graph, GnnConfig(features=8, layers=3, strategy="rs_ar"))
    system = DimmSystem.small(mram_bytes=1 << 20)
    manager = HypercubeManager(system, shape=(4, 4))
    result = app.run(manager, PidCommBackend(), functional=True)

    ok = np.array_equal(result.output, result.meta["golden"])
    print(f"distributed output matches golden model: {ok}")
    print(f"modelled time: {result.seconds * 1e3:.2f} ms, "
          f"comm share {result.comm_seconds / result.seconds:.0%}")
    print("per-primitive seconds:")
    for prim, seconds in sorted(result.per_primitive.items()):
        print(f"  {prim:16s} {seconds * 1e3:8.3f} ms")
    print()


def paper_scale_demo() -> None:
    print("=== Analytic: Reddit-scale GNN on 1024 PEs (32x32) ===")
    system = DimmSystem.paper_testbed()
    manager = HypercubeManager(system, shape=(32, 32))
    print(f"{'strategy':<10s} {'backend':<18s} {'total':>9s} {'comm':>9s}")
    for strategy in ("rs_ar", "ar_ag"):
        for backend in (BaselineCommBackend(), PidCommBackend()):
            app = paper_gnn(strategy)
            result = app.run(manager, backend, functional=False)
            print(f"{strategy:<10s} {backend.name:<18s} "
                  f"{result.seconds:>8.2f}s {result.comm_seconds:>8.2f}s")
    print()
    print("8-bit quantized inference (cross-domain reduction applies):")
    app8 = paper_gnn("rs_ar", dtype_name="int8")
    base = app8.run(manager, BaselineCommBackend(), functional=False)
    pid = app8.run(manager, PidCommBackend(), functional=False)
    print(f"  baseline {base.seconds:.2f}s -> PID-Comm {pid.seconds:.2f}s "
          f"({base.seconds / pid.seconds:.2f}x)")


if __name__ == "__main__":
    functional_demo()
    paper_scale_demo()
