"""What-if hardware exploration with the cost model.

The analytic simulator makes "what would PID-Comm gain from X" a
one-liner: swap machine parameters and re-estimate. This example walks
the questions the paper's discussion section raises -- more off-chip
channels (section VIII-E calls them "a valuable resource"), a DSA
offload of the host data path (section IX-B), and the other PIM
architectures of Figure 24.

Run:  python examples/whatif_hardware.py
"""

from repro import FULL, HypercubeManager, MachineParams
from repro.analysis.trace import render_categories
from repro.core.collectives import plan_allreduce, plan_alltoall
from repro.dtypes import INT64, SUM
from repro.hw.geometry import DimmGeometry
from repro.hw.system import DimmSystem
from repro.variants import ARCHITECTURE_PROFILES, dsa_offload_params, variant_allreduce


def channels_sweep() -> None:
    print("=== More off-chip channels (8 MB/PE AlltoAll, 1024 PEs) ===")
    for channels in (2, 4, 8):
        ranks = 16 // channels  # keep 1024 PEs
        system = DimmSystem(DimmGeometry(channels, ranks, 8, 8),
                            mram_bytes=64 << 20)
        manager = HypercubeManager(system, shape=(32, 32))
        seconds = plan_alltoall(manager, "10", 8 << 20, 0, 0, INT64,
                                FULL).estimate(system).total
        print(f"{channels} channels: {seconds * 1e3:7.1f} ms")
    print("(PID-Comm is bus-bound, so channels pay off; the baseline "
          "is host-bound and would not move -- Figure 19's point)\n")


def dsa_whatif() -> None:
    print("=== DSA offload of the host data path (AllReduce) ===")
    for label, params in (("host CPU  ", None),
                          ("future DSA", dsa_offload_params())):
        system = DimmSystem.paper_testbed(params=params)
        manager = HypercubeManager(system, shape=(32, 32))
        plan = plan_allreduce(manager, "10", 8 << 20, 0, 0, INT64, SUM,
                              FULL)
        print(f"--- {label} ---")
        print(render_categories(plan, system))
    print()


def architecture_tour() -> None:
    print("=== PID-Comm on other PIM architectures (1 MB/PE AllReduce) ===")
    for name, profile in ARCHITECTURE_PROFILES.items():
        row = variant_allreduce(name)
        print(f"{profile.name:<8s} {row['total_s'] * 1e3:7.1f} ms "
              f"(local {row['local_s'] * 1e3:6.1f} + host "
              f"{row['global_s'] * 1e3:6.1f}; dt {row['dt_s'] * 1e3:5.1f}) "
              f"- {profile.notes}")


def custom_params() -> None:
    print("\n=== Rolling your own machine ===")
    faster_host = MachineParams().scaled(host_cores=32,
                                         host_mem_gbps=120.0)
    system = DimmSystem.paper_testbed(params=faster_host)
    manager = HypercubeManager(system, shape=(32, 32))
    t = plan_allreduce(manager, "10", 8 << 20, 0, 0, INT64, SUM,
                       FULL).estimate(system).total
    print(f"32-core host, 120 GB/s DRAM: AllReduce {t * 1e3:.1f} ms "
          "(vs ~595 ms on the paper's Xeon Gold 5215)")


if __name__ == "__main__":
    channels_sweep()
    dsa_whatif()
    architecture_tour()
    custom_params()
