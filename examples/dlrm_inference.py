"""DLRM inference with 3-D hypercube parallelism (Figure 11).

Embedding columns split over x, table rows over y, tables over z; the
batch flows through Broadcast -> lookup -> ReduceScatter(y) ->
AlltoAll(xz) -> top MLP -> Gather, validated against the golden model.

Run:  python examples/dlrm_inference.py
"""

import numpy as np

from repro import DimmSystem, HypercubeManager
from repro.analysis.workloads import paper_dlrm
from repro.apps import BaselineCommBackend, DlrmApp, DlrmConfig, PidCommBackend
from repro.data import criteo_like


def functional_demo() -> None:
    print("=== Functional: 32 samples on a 4x2x2 cube (16 PEs) ===")
    data = criteo_like(batch_size=32, num_tables=4, num_rows=16, hots=3,
                       seed=5)
    app = DlrmApp(data, DlrmConfig(embedding_dim=8, mlp_hidden=4))
    system = DimmSystem.small(mram_bytes=1 << 20)
    manager = HypercubeManager(system, shape=(4, 2, 2))
    result = app.run(manager, PidCommBackend(), functional=True)
    ok = np.array_equal(result.output, result.meta["golden"].reshape(-1))
    print(f"scores match golden DLRM: {ok}")
    print(f"first scores: {result.output[:6]}")
    print("communication used:", ", ".join(
        sorted(k for k in result.per_primitive if k != "kernel")))
    print()


def paper_scale_demo() -> None:
    print("=== Analytic: Criteo-like batch 4096 on 1024 PEs (4x8x32) ===")
    system = DimmSystem.paper_testbed()
    manager = HypercubeManager(system, shape=(4, 8, 32))
    for dim in (16, 32):
        app = paper_dlrm(embedding_dim=dim)
        base = app.run(manager, BaselineCommBackend(), functional=False)
        pid = app.run(manager, PidCommBackend(), functional=False)
        print(f"emb dim {dim:>2d}: baseline {base.seconds * 1e3:7.1f} ms, "
              f"PID-Comm {pid.seconds * 1e3:7.1f} ms "
              f"({base.seconds / pid.seconds:.2f}x)")


if __name__ == "__main__":
    functional_demo()
    paper_scale_demo()
