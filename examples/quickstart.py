"""Quickstart: your first PID-Comm collective.

Builds a simulated PIM-enabled DIMM system, maps a virtual hypercube
onto it, runs a multi-instance AllReduce both functionally (real bytes
through the simulated banks) and analytically (paper-scale cost
estimate), and shows the optimization-technique ladder.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ABLATION_LADDER,
    DimmSystem,
    HypercubeManager,
    pidcomm_allreduce,
    pidcomm_alltoall,
)
from repro.dtypes import INT64


def functional_demo() -> None:
    print("=== Functional demo: 32 PEs, 4x4x2 hypercube ===")
    system = DimmSystem.small(mram_bytes=1 << 16)
    manager = HypercubeManager(system, shape=(4, 4, 2))
    print(manager.describe())

    elems = 8
    nbytes = elems * 8
    src = system.alloc(nbytes)
    dst = system.alloc(nbytes)

    # Give every PE its node index repeated; AllReduce along the y axis
    # ("010") then sums each group of 4 PEs.
    for node in range(manager.num_nodes):
        pe = manager.pe_of_node(node)
        system.write_elements(pe, src, np.full(elems, node), INT64)

    result = pidcomm_allreduce(manager, "010", nbytes, src, dst,
                               data_type="int64", reduction_type="sum")
    pe0 = manager.pe_of_node(0)
    print(f"node 0 received: {system.read_elements(pe0, dst, elems, INT64)}")
    print(f"modelled time  : {result.seconds * 1e6:.1f} us")
    print(f"plan           :\n{result.plan.describe()}")
    print()


def analytic_demo() -> None:
    print("=== Analytic demo: the paper's 1024-PE testbed, 8 MB/PE ===")
    system = DimmSystem.paper_testbed()
    manager = HypercubeManager(system, shape=(32, 32))
    payload = 8 << 20

    print(f"{'config':>10s}  {'AlltoAll':>12s}")
    for config in ABLATION_LADDER:
        result = pidcomm_alltoall(manager, "10", payload, 0, 0, INT64,
                                  config=config, functional=False)
        print(f"{config.label:>10s}  {result.seconds * 1e3:>9.1f} ms")
    print("(no simulated memory was allocated for these runs:",
          system.touched_pes, "PEs touched)")


if __name__ == "__main__":
    functional_demo()
    analytic_demo()
