"""Quickstart: your first PID-Comm collectives, through a session.

Builds a simulated PIM-enabled DIMM system, maps a virtual hypercube
onto it, and opens a :class:`Communicator` -- the session API that
caches compiled plans and schedules whole batches.  Runs a
multi-instance AllReduce functionally (real bytes through the
simulated banks), prices the optimization-technique ladder at paper
scale, and submits a batch of independent AlltoAlls to show the
overlap-aware pricing.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ABLATION_LADDER,
    CommRequest,
    Communicator,
    DimmSystem,
    HypercubeManager,
    SessionConfig,
)
from repro.analysis.trace import render_batch_timeline
from repro.dtypes import INT64


def functional_demo() -> None:
    print("=== Functional demo: 32 PEs, 4x4x2 hypercube ===")
    system = DimmSystem.small(mram_bytes=1 << 16)
    manager = HypercubeManager(system, shape=(4, 4, 2))
    comm = Communicator(manager)
    print(manager.describe())

    elems = 8
    nbytes = elems * 8
    src = system.alloc(nbytes)
    dst = system.alloc(nbytes)

    # Give every PE its node index repeated; AllReduce along the y axis
    # ("010") then sums each group of 4 PEs.
    for node in range(manager.num_nodes):
        pe = manager.pe_of_node(node)
        system.write_elements(pe, src, np.full(elems, node), INT64)

    result = comm.allreduce("010", nbytes, src_offset=src, dst_offset=dst,
                            data_type="int64", reduction_type="sum")
    pe0 = manager.pe_of_node(0)
    print(f"node 0 received: {system.read_elements(pe0, dst, elems, INT64)}")
    print(f"modelled time  : {result.seconds * 1e6:.1f} us")
    print(f"plan           :\n{result.plan.describe()}")

    # The second identical call is served from the session's plan cache.
    again = comm.allreduce("010", nbytes, src_offset=src, dst_offset=dst)
    print(f"repeat call    : {again!r}")
    print()


def analytic_demo() -> None:
    print("=== Analytic demo: the paper's 1024-PE testbed, 8 MB/PE ===")
    system = DimmSystem.paper_testbed()
    manager = HypercubeManager(system, shape=(32, 32))
    comm = Communicator(manager, SessionConfig(functional=False))
    payload = 8 << 20

    print(f"{'config':>10s}  {'AlltoAll':>12s}")
    for config in ABLATION_LADDER:
        result = comm.alltoall("10", payload, config=config)
        print(f"{config.label:>10s}  {result.seconds * 1e3:>9.1f} ms")
    print("(no simulated memory was allocated for these runs:",
          system.touched_pes, "PEs touched)")
    print()
    return comm, payload


def batch_demo(comm: Communicator, payload: int) -> None:
    print("=== Batch demo: 4 independent AlltoAlls, one submit() ===")
    step = 16 << 20
    requests = [CommRequest("alltoall", "10", payload,
                            src_offset=k * 2 * step,
                            dst_offset=k * 2 * step + step)
                for k in range(4)]
    batch = comm.submit(requests)
    print(render_batch_timeline(batch))
    print()
    print(comm.stats.report())


if __name__ == "__main__":
    functional_demo()
    session, payload = analytic_demo()
    batch_demo(session, payload)
