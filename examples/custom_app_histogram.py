"""Building your own application on PID-Comm: distributed histogram.

A worked example of the extension API (docs/tutorial.md walks through
it): shard values across the PEs with Scatter, bin locally in a PE
kernel, merge the per-PE histograms with a sum-AllReduce, and Reduce
the final counts to the host.  The distributed result is checked
against numpy's histogram.

Run:  python examples/custom_app_histogram.py
"""

import numpy as np

from repro import DimmSystem, HypercubeManager
from repro.apps.base import AppHarness, PidCommBackend
from repro.dtypes import INT64, MIN


class HistogramApp:
    """Histogram of integer values in [0, bins)."""

    name = "Histogram"

    def __init__(self, values: np.ndarray, bins: int) -> None:
        self.values = np.asarray(values, dtype=np.int64)
        self.bins = bins

    def run(self, manager: HypercubeManager, backend, functional=True):
        p = manager.num_nodes
        n = len(self.values)
        if n % p or self.bins % p:
            raise ValueError("values and bins must divide over the PEs")
        shard = n // p
        harness = AppHarness(manager, backend, functional)
        system = manager.system

        val_buf = system.alloc(shard * 8)
        hist_buf = system.alloc(self.bins * 8)

        # 1. Scatter the value shards.
        harness.comm("scatter", "1", shard * 8, dst=val_buf,
                     payloads={0: self.values} if functional else None)

        # 2. PE kernel: bin the local shard.
        harness.kernel("bin", ops_per_pe=4.0 * shard,
                       bytes_per_pe=8.0 * (shard + self.bins))
        if functional:
            for pe in manager.all_pes:
                local = system.read_elements(pe, val_buf, shard, INT64)
                counts = np.bincount(local, minlength=self.bins)
                system.write_elements(pe, hist_buf,
                                      counts.astype(np.int64), INT64)

        # 3. Sum-AllReduce merges the per-PE histograms.
        harness.comm("allreduce", "1", self.bins * 8, src=hist_buf,
                     dst=hist_buf)

        # 4. Reduce to the host (all PEs now agree; min picks one copy).
        outputs = harness.comm("reduce", "1", self.bins * 8, src=hist_buf,
                               op=MIN)
        output = None
        if functional and outputs is not None:
            output = np.asarray(outputs[0]).reshape(-1)
        return harness.result(self.name, output=output, bins=self.bins)


def main() -> None:
    rng = np.random.default_rng(0)
    bins = 64
    values = rng.integers(0, bins, 4096)
    app = HistogramApp(values, bins)

    system = DimmSystem.small(mram_bytes=1 << 16)
    manager = HypercubeManager(system, shape=(32,))
    result = app.run(manager, PidCommBackend(), functional=True)

    golden = np.bincount(values, minlength=bins)
    print("distributed histogram matches numpy:",
          np.array_equal(result.output, golden))
    print(f"total counted: {int(result.output.sum())} "
          f"(expected {len(values)})")
    print(f"modelled time: {result.seconds * 1e3:.2f} ms; breakdown:")
    for prim, seconds in sorted(result.per_primitive.items()):
        print(f"  {prim:12s} {seconds * 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
