"""Multi-host PID-Comm over a simulated 10 Gbps MPI fabric (section IX-A).

Each host drives one UPMEM channel (256 PEs); local collectives run
PID-Comm, the global phase runs MPI.  AllReduce ships only the locally
reduced vector (1/256th of the data), AlltoAll pays the full (N-1)/N
crossing share -- the asymmetry of Figure 23b.

Run:  python examples/multihost_scaling.py
"""

import numpy as np

from repro.core import reference as ref
from repro.dtypes import INT64, SUM
from repro.multihost import (
    MultiHostSystem,
    multihost_allreduce,
    multihost_alltoall,
)


def functional_demo() -> None:
    print("=== Functional: global AllReduce over 2 hosts x 64 PEs ===")
    mh = MultiHostSystem(2, ranks_per_channel=1, mram_bytes=1 << 16)
    elems = mh.pes_per_host
    buf = mh.alloc(elems * 8)
    out = mh.alloc(elems * 8)
    rng = np.random.default_rng(0)
    inputs = [rng.integers(0, 100, elems) for _ in range(mh.total_pes)]
    for gpe, values in enumerate(inputs):
        mh.write_pe(gpe, buf, values, INT64)
    result = multihost_allreduce(mh, elems * 8, buf, out, INT64, SUM)
    expect = ref.allreduce(inputs, SUM)[0]
    got = result.outputs[1][0]  # host 1, local PE 0
    print(f"every PE on every host holds the global sum: "
          f"{np.array_equal(got, expect)}")
    print(f"local time {result.ledger.total * 1e3:.2f} ms, "
          f"MPI time {result.mpi_seconds * 1e3:.2f} ms")
    print()


def scaling_demo() -> None:
    print("=== Analytic: 1-4 hosts x 256 PEs, 2 MB per PE ===")
    payload = 2 << 20
    print(f"{'hosts':>5s} {'AR local':>10s} {'AR mpi':>10s} "
          f"{'AA local':>10s} {'AA mpi':>10s}")
    for hosts in (1, 2, 3, 4):
        mh = MultiHostSystem(hosts)
        ar = multihost_allreduce(mh, payload, 0, 0, functional=False)
        chunk = max(8, (payload // mh.total_pes) // 8 * 8)
        aa = multihost_alltoall(MultiHostSystem(hosts),
                                chunk * mh.total_pes, 0, 0,
                                functional=False)
        print(f"{hosts:>5d} {ar.ledger.total * 1e3:>8.1f}ms "
              f"{ar.mpi_seconds * 1e3:>8.1f}ms "
              f"{aa.ledger.total * 1e3:>8.1f}ms "
              f"{aa.mpi_seconds * 1e3:>8.1f}ms")
    print("\nAllReduce's MPI share stays tiny (data reduced 256-fold "
          "before crossing); AlltoAll's grows with the host count.")


if __name__ == "__main__":
    functional_demo()
    scaling_demo()
