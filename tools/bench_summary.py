#!/usr/bin/env python
"""Aggregate every committed ``BENCH_*.json`` into one trajectory table.

Each benchmark gate (``benchmarks/bench_*.py``) writes a JSON report
with a ``mode`` and a ``headline`` dict whose keys differ per gate
(speedup vs. a threshold, goodput ratio, tuned-vs-hand ratio, ...).
This tool is the one place to read them all at once -- the performance
trajectory of the repo across PRs::

    python tools/bench_summary.py            # reports in the repo root
    python tools/bench_summary.py --dir path --json summary.json

It is a reporter, not a gate: the per-benchmark scripts already exit
non-zero on regression.  Exit is non-zero only when no reports exist.
"""

import argparse
import json
import sys
from pathlib import Path


def _fmt(value):
    """Compact scalar rendering for table cells."""
    if isinstance(value, float):
        return f"{value:.3g}"
    if isinstance(value, dict):
        return ", ".join(f"{k}={_fmt(v)}" for k, v in value.items())
    if isinstance(value, list):
        return ", ".join(_fmt(v) for v in value)
    return str(value)


def load_reports(directory: Path) -> list[dict]:
    """All ``BENCH_*.json`` reports in ``directory``, name-sorted."""
    reports = []
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path) as handle:
            data = json.load(handle)
        reports.append({
            "name": path.stem.removeprefix("BENCH_"),
            "file": path.name,
            "mode": data.get("mode", "?"),
            "headline": data.get("headline", {}),
            "parity": data.get("parity"),
        })
    return reports


def render(reports: list[dict]) -> str:
    """The aligned trajectory table."""
    rows = [("benchmark", "mode", "headline")]
    for report in reports:
        rows.append((report["name"], report["mode"],
                     _fmt(report["headline"])))
    widths = [max(len(row[col]) for row in rows) for col in (0, 1)]
    lines = []
    for index, (name, mode, headline) in enumerate(rows):
        lines.append(f"{name:<{widths[0]}}  {mode:<{widths[1]}}  {headline}")
        if index == 0:
            lines.append("-" * len(lines[0]))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".",
                        help="directory holding BENCH_*.json (default: .)")
    parser.add_argument("--json", default=None,
                        help="also write the aggregate as JSON here")
    args = parser.parse_args(argv)
    reports = load_reports(Path(args.dir))
    if not reports:
        print(f"no BENCH_*.json reports under {args.dir}", file=sys.stderr)
        return 1
    print(render(reports))
    print(f"\n{len(reports)} reports; parity checked in "
          f"{sum(1 for r in reports if r['parity'])} of them")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(reports, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
