#!/usr/bin/env python
"""Aggregate every committed ``BENCH_*.json`` into one trajectory table.

Each benchmark gate (``benchmarks/bench_*.py``) writes a JSON report
with a ``mode`` and a ``headline`` dict whose keys differ per gate
(speedup vs. a threshold, goodput ratio, tuned-vs-hand ratio, ...).
This tool is the one place to read them all at once -- the performance
trajectory of the repo across PRs::

    python tools/bench_summary.py            # reports in the repo root
    python tools/bench_summary.py --dir path --json summary.json

It is a reporter, not a gate: the per-benchmark scripts already exit
non-zero on regression.  Exit is non-zero only when no reports exist.
"""

import argparse
import json
import sys
from pathlib import Path


def _fmt(value):
    """Compact scalar rendering for table cells."""
    if isinstance(value, float):
        return f"{value:.3g}"
    if isinstance(value, dict):
        return ", ".join(f"{k}={_fmt(v)}" for k, v in value.items())
    if isinstance(value, list):
        return ", ".join(_fmt(v) for v in value)
    return str(value)


def _gate_cell(data: dict) -> str:
    """Render a report's gate block, whatever shape this gate used.

    Gates are per-benchmark: some reports carry a ``gates`` dict of
    named thresholds, some a single ``gate``, most none at all (their
    script exits non-zero instead of recording the check).  Every
    shape -- including its absence -- must render, never KeyError.
    """
    gates = data.get("gates", data.get("gate"))
    if gates is None:
        return "-"
    if isinstance(gates, dict):
        return ", ".join(f"{k}={_fmt(v)}" for k, v in gates.items()) or "-"
    return _fmt(gates)


def load_reports(directory: Path) -> list[dict]:
    """All readable ``BENCH_*.json`` reports in ``directory``, name-sorted.

    Resilient by design: new gates append reports with new shapes
    faster than this reporter learns about them, so a missing key,
    a non-dict document, or an unparsable file becomes a warning row,
    not a crash that hides every other benchmark's trajectory.
    """
    reports = []
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"skipping unreadable {path.name}: {error}",
                  file=sys.stderr)
            continue
        if not isinstance(data, dict):
            data = {"headline": data}
        results = data.get("results")
        fabric = (results.get("modelled_fabric_seconds")
                  if isinstance(results, dict) else None)
        reports.append({
            "name": path.stem.removeprefix("BENCH_"),
            "file": path.name,
            "mode": str(data.get("mode", "?")),
            "headline": data.get("headline", {}),
            "gates": _gate_cell(data),
            "parity": data.get("parity"),
            "fabric_seconds": fabric,
        })
    return reports


def render(reports: list[dict]) -> str:
    """The aligned trajectory table.

    ``fabric s`` is the modelled inter-host fabric time a report
    carries next to its wall-clock headline (multihost gates only;
    ``-`` elsewhere) -- the modelled-cost companion to the ledger
    categories the per-benchmark JSONs break out.
    """
    rows = [("benchmark", "mode", "gates", "fabric s", "headline")]
    for report in reports:
        fabric = report.get("fabric_seconds")
        rows.append((report["name"], report["mode"], report["gates"],
                     "-" if fabric is None else _fmt(fabric),
                     _fmt(report["headline"])))
    widths = [max(len(row[col]) for row in rows) for col in (0, 1, 2, 3)]
    lines = []
    for index, (name, mode, gates, fabric, headline) in enumerate(rows):
        lines.append(f"{name:<{widths[0]}}  {mode:<{widths[1]}}  "
                     f"{gates:<{widths[2]}}  {fabric:<{widths[3]}}  "
                     f"{headline}")
        if index == 0:
            lines.append("-" * len(lines[0]))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".",
                        help="directory holding BENCH_*.json (default: .)")
    parser.add_argument("--json", default=None,
                        help="also write the aggregate as JSON here")
    args = parser.parse_args(argv)
    reports = load_reports(Path(args.dir))
    if not reports:
        print(f"no BENCH_*.json reports under {args.dir}", file=sys.stderr)
        return 1
    print(render(reports))
    print(f"\n{len(reports)} reports; parity checked in "
          f"{sum(1 for r in reports if r['parity'])} of them")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(reports, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
