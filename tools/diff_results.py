#!/usr/bin/env python
"""Compare two saved experiment result files for drift.

Usage:  python tools/diff_results.py OLD.json NEW.json [--tol 0.02]

Exit code 0 when no numeric cell drifted beyond the tolerance, 1
otherwise (prints the drifting cells).  Use together with
``python -m repro --json DIR`` to guard cost-model changes.
"""

import argparse
import sys

from repro.analysis.persistence import compare_results, load_results
from repro.analysis.report import render_dict_rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--tol", type=float, default=0.02,
                        help="relative drift tolerance (default 2%%)")
    args = parser.parse_args(argv)
    old = load_results(args.old)
    new = load_results(args.new)
    drifts = compare_results(old, new, rel_tol=args.tol)
    if not drifts:
        print(f"OK: {old['experiment']} matches within {args.tol:.1%}")
        return 0
    print(render_dict_rows(drifts,
                           f"DRIFT in {old['experiment']} (> {args.tol:.1%})"))
    return 1


if __name__ == "__main__":
    sys.exit(main())
