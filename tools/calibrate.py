"""Print modelled headline ratios vs paper targets for calibration."""
import numpy as np
from repro import FULL, HypercubeManager
from repro.core.collectives import (plan_alltoall, plan_allgather,
    plan_reduce_scatter, plan_allreduce, plan_gather, plan_scatter,
    plan_reduce, plan_broadcast, ABLATION_LADDER)
from repro.baselines import baseline_plan, ring_allreduce_plan, tree_allreduce_plan
from repro.dtypes import INT64, SUM
from repro.hw.system import DimmSystem
from repro.hw.timing import throughput_gbps

MB = 1 << 20
system = DimmSystem.paper_testbed()
man = HypercubeManager(system, shape=(32, 32))
S = 8 * MB

def pid(prim, size=S, dims="10"):
    if prim == "alltoall": return plan_alltoall(man, dims, size, 0, 0, INT64)
    if prim == "allgather": return plan_allgather(man, dims, size // 32, 0, 0, INT64)
    if prim == "reduce_scatter": return plan_reduce_scatter(man, dims, size, 0, 0, INT64, SUM)
    if prim == "allreduce": return plan_allreduce(man, dims, size, 0, 0, INT64, SUM)
    if prim == "gather": return plan_gather(man, dims, size, 0, INT64)
    if prim == "scatter": return plan_scatter(man, dims, size, 0, INT64)
    if prim == "reduce": return plan_reduce(man, dims, size, 0, INT64, SUM)
    if prim == "broadcast": return plan_broadcast(man, dims, size, 0, INT64)

def base(prim, size=S, dims="10"):
    insz = size // 32 if prim == "allgather" else size
    return baseline_plan(prim, man, dims, insz, 0, 0, INT64, SUM)

targets = {"alltoall": 5.19, "reduce_scatter": 4.46, "allreduce": 4.23,
           "allgather": 1.4, "scatter": 2.0, "gather": 2.0, "reduce": 4.0,
           "broadcast": 1.0}
print("=== Fig 14: (32,32) dims=10, 8MB/PE ===")
sps = []
for prim, tgt in targets.items():
    tb = base(prim).estimate(system).total
    tp = pid(prim).estimate(system).total
    sp = tb / tp
    sps.append(sp)
    print(f"{prim:15s} speedup {sp:5.2f}  (target ~{tgt})  base={tb*1e3:8.1f}ms pid={tp*1e3:8.1f}ms")
print(f"geomean {np.exp(np.mean(np.log(sps))):.2f} (target 2.83)")

print("\n=== Fig 16 ablation (geomean step ratios; targets PR 1.48, +IM 2.03, +CM 1.42) ===")
prims = ["alltoall", "reduce_scatter", "allreduce", "allgather"]
ladder_times = {}
for prim in prims:
    ts = []
    for cfg in ABLATION_LADDER:
        if prim == "alltoall": p = plan_alltoall(man, "10", S, 0, 0, INT64, cfg)
        elif prim == "allgather": p = plan_allgather(man, "10", S // 32, 0, 0, INT64, cfg)
        elif prim == "reduce_scatter": p = plan_reduce_scatter(man, "10", S, 0, 0, INT64, SUM, cfg)
        else: p = plan_allreduce(man, "10", S, 0, 0, INT64, SUM, cfg)
        ts.append(p.estimate(system).total)
    ladder_times[prim] = ts
    print(f"{prim:15s} " + " ".join(f"{t*1e3:8.1f}" for t in ts) +
          "   steps: " + " ".join(f"{ts[i]/ts[i+1]:.2f}" for i in range(3)))
for i, lbl in enumerate(["PR", "IM", "CM"]):
    ratios = [ladder_times[p][i] / ladder_times[p][i+1] for p in prims]
    print(f"step {lbl}: geomean {np.exp(np.mean(np.log(ratios))):.2f}")

print("\n=== Fig 18: size sweep speedup (AA 2D) ===")
for size in [128*1024, 512*1024, 2*MB, 8*MB]:
    tb = base("alltoall", size).estimate(system).total
    tp = pid("alltoall", size).estimate(system).total
    print(f"size {size>>10:5d}KB speedup {tb/tp:.2f}")

print("\n=== Fig 23a: topologies (1MB, per-dim groups; targets ring<=2.05x tree<=7.89x slowdown) ===")
size = 1 * MB
tp = plan_allreduce(man, "10", size, 0, 0, INT64, SUM).estimate(system).total
tr = ring_allreduce_plan(man, "10", size, 0, 0, INT64, SUM).estimate(system).total
tt = tree_allreduce_plan(man, "10", size, 0, 0, INT64, SUM).estimate(system).total
print(f"pid={tp*1e3:.1f}ms ring={tr/tp:.2f}x tree={tt/tp:.2f}x")

print("\n=== Fig 20-ish: throughputs GB/s (def: larger side / time) ===")
for prim in ["alltoall", "allreduce", "reduce_scatter", "allgather"]:
    t = pid(prim).estimate(system).total
    larger = 1024 * S
    print(f"{prim:15s} {throughput_gbps(larger, t):6.1f} GB/s")
