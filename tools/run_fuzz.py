"""Standalone differential-fuzz smoke runner.

Drives random collectives through the session engine and checks every
functional result bit-exactly against ``repro.core.reference``, with
optional fault injection (retry enabled).  Unlike the pytest sweeps in
``tests/test_differential_fuzz.py`` this runs for a *time budget*, so
CI can smoke as much as its slot allows::

    PYTHONPATH=src python tools/run_fuzz.py --seconds 10
    PYTHONPATH=src python tools/run_fuzz.py --seconds 5 --fault-rate 0.01

Exits nonzero (with the failing case's parameters, replayable via
``--seed``) on the first mismatch.
"""

import argparse
import sys
import time

import numpy as np

from repro import (ABLATION_LADDER, Communicator, DimmSystem, FaultInjector,
                   HypercubeManager, SessionConfig)
from repro.core import reference as ref
from repro.core.groups import slice_groups
from repro.dtypes import INT8, INT16, INT32, INT64, SUM

PRIMITIVES = ("alltoall", "allgather", "reduce_scatter", "allreduce",
              "gather", "scatter", "reduce", "broadcast")
SHAPES = ((4, 8), (8, 4), (4, 4, 2), (2, 4, 4), (2, 2, 8), (16, 2))
DTYPES = (INT8, INT16, INT32, INT64)

REFERENCE = {
    "alltoall": lambda v: ref.alltoall(v),
    "allgather": lambda v: ref.allgather(v),
    "reduce_scatter": lambda v: ref.reduce_scatter(v, SUM),
    "allreduce": lambda v: ref.allreduce(v, SUM),
}


def random_bitmap(rng, ndim):
    """A uniformly random non-empty dimension bitmap."""
    while True:
        bits = rng.integers(0, 2, ndim)
        if bits.any():
            return "".join(str(int(b)) for b in bits)


def run_one(rng, case_seed, fault_rate, workers=1):
    """Run one random collective; returns its CommResult."""
    primitive = PRIMITIVES[rng.integers(len(PRIMITIVES))]
    shape = SHAPES[rng.integers(len(SHAPES))]
    dtype = DTYPES[rng.integers(len(DTYPES))]
    chunk = int(rng.integers(1, 5))
    config = ABLATION_LADDER[rng.integers(len(ABLATION_LADDER))]

    system = DimmSystem.small(mram_bytes=1 << 16)
    manager = HypercubeManager(system, shape)
    injector = None
    if fault_rate > 0:
        per = fault_rate / 3.0
        injector = FaultInjector(seed=case_seed, bit_flip_rate=per,
                                 drop_rate=per, timeout_rate=per)
    comm = Communicator(manager,
                        SessionConfig(config=config, fault_injector=injector,
                                      parallel_workers=workers))
    bitmap = random_bitmap(rng, manager.ndim)
    groups = slice_groups(manager, bitmap)
    n = groups[0].size
    item = dtype.itemsize

    if primitive in ("scatter", "broadcast"):
        root_elems = n * chunk if primitive == "scatter" else chunk
        payloads = {g.instance: rng.integers(-99, 100, root_elems)
                    .astype(dtype.np_dtype) for g in groups}
        total = chunk * item
        dst = system.alloc(total)
        result = getattr(comm, primitive)(
            bitmap, total, dst_offset=dst, data_type=dtype,
            payloads=payloads)
        for group in groups:
            make = ref.scatter if primitive == "scatter" else ref.broadcast
            want = make(payloads[group.instance], n)
            for pe, expect in zip(group.pe_ids, want):
                got = system.read_elements(pe, dst, chunk, dtype)
                np.testing.assert_array_equal(got, expect)
        return result

    elems = chunk if primitive == "allgather" else n * chunk
    total = elems * item
    src = system.alloc(total)
    inputs = {}
    for group in groups:
        vectors = []
        for pe in group.pe_ids:
            values = rng.integers(-99, 100, elems).astype(dtype.np_dtype)
            system.write_elements(pe, src, values, dtype)
            vectors.append(values)
        inputs[group.instance] = vectors

    if primitive in ("gather", "reduce"):
        method = getattr(comm, primitive)
        kwargs = {"reduction_type": SUM} if primitive == "reduce" else {}
        result = method(bitmap, total, src_offset=src, data_type=dtype,
                        **kwargs)
        for group in groups:
            make = ref.gather if primitive == "gather" else \
                (lambda v: ref.reduce(v, SUM))
            want = make(inputs[group.instance])
            got = np.asarray(result.host_outputs[group.instance]).view(
                dtype.np_dtype).reshape(-1)
            np.testing.assert_array_equal(got, want)
        return result

    out_elems = {"alltoall": elems, "reduce_scatter": chunk,
                 "allgather": n * chunk, "allreduce": elems}[primitive]
    dst = system.alloc(out_elems * item)
    kwargs = ({"reduction_type": SUM}
              if primitive in ("reduce_scatter", "allreduce") else {})
    result = getattr(comm, primitive)(
        bitmap, total, src_offset=src, dst_offset=dst, data_type=dtype,
        **kwargs)
    for group in groups:
        want = REFERENCE[primitive](inputs[group.instance])
        for pe, expect in zip(group.pe_ids, want):
            got = system.read_elements(pe, dst, out_elems, dtype)
            np.testing.assert_array_equal(got, expect)
    return result


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=5.0,
                        help="time budget for the sweep (default 5)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed (replays the same case sequence)")
    parser.add_argument("--fault-rate", type=float, default=0.01,
                        help="total transient fault rate per operation "
                        "(0 disables injection; default 0.01)")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel_workers per session; sessions "
                        "with fault injection fall back to serial wave "
                        "execution but still band-parallelize streamed "
                        "replay (default 1)")
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    deadline = time.monotonic() + args.seconds
    cases = retried = 0
    while time.monotonic() < deadline:
        cases += 1
        try:
            result = run_one(rng, case_seed=args.seed + cases,
                             fault_rate=args.fault_rate,
                             workers=args.workers)
        except Exception as exc:  # mismatch or unexpected engine error
            print(f"FAIL at case {cases} (seed {args.seed}): {exc}",
                  file=sys.stderr)
            return 1
        if result.attempts > 1:
            retried += 1
    print(f"OK: {cases} cases in {args.seconds:.1f}s budget, "
          f"{retried} retried (seed {args.seed}, "
          f"fault rate {args.fault_rate}, {args.workers} workers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
